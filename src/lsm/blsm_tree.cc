#include "lsm/blsm_tree.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "lsm/collapse.h"
#include "sstree/tree_builder.h"

namespace blsm {

namespace {

constexpr uint64_t kMergePausePollUs = 1000;

}  // namespace

// --- construction / open ------------------------------------------------------

BlsmTree::BlsmTree(const BlsmOptions& options, std::string dir)
    : options_(options), dir_(std::move(dir)) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  if (options_.io_rate_limiter != nullptr) {
    // All tree I/O goes through the limiter-aware decorator; only writes on
    // IoPriority-tagged threads (the BackgroundRunner jobs) are metered.
    rate_limited_env_ = std::make_unique<engine::RateLimitedEnv>(
        env_, options_.io_rate_limiter);
    env_ = rate_limited_env_.get();
    if (options_.adaptive_merge_rate) {
      rate_controller_ = std::make_unique<engine::AdaptiveRateController>(
          options_.io_rate_limiter, options_.adaptive_rate);
    }
  }
  if (options_.shared_block_cache != nullptr) {
    cache_ = options_.shared_block_cache;
  } else if (options_.block_cache_bytes > 0) {
    cache_ = std::make_shared<BlockCache>(options_.block_cache_bytes);
  }  // else: no cache — every read hits the Env (cold-cache measurements)
  if (options_.scheduler == SchedulerKind::kSpringGear) {
    scheduler_ = std::make_unique<SpringGearScheduler>(
        options_.low_watermark, options_.high_watermark);
  } else {
    scheduler_ = MakeScheduler(options_.scheduler);
  }
  merge_op_ = options_.merge_operator != nullptr
                  ? options_.merge_operator
                  : std::make_shared<const AppendMergeOperator>();
}

Status BlsmTree::Open(const BlsmOptions& options, const std::string& dir,
                      std::unique_ptr<BlsmTree>* out) {
  auto tree = std::unique_ptr<BlsmTree>(new BlsmTree(options, dir));
  Status s = tree->OpenImpl();
  if (!s.ok()) return s;
  *out = std::move(tree);
  return Status::OK();
}

Status BlsmTree::OpenImpl() {
  Status s;
  if (!options_.read_only) {
    s = env_->CreateDir(dir_);
    if (!s.ok()) return s;
  }

  Manifest manifest;
  s = Manifest::Load(env_, dir_, &manifest);
  if (s.IsNotFound() && !options_.read_only) {
    manifest = Manifest{};
    s = manifest.Save(env_, dir_);
  }
  if (!s.ok()) return s;

  {
    // No background threads exist yet, but the guarded fields are touched
    // under mu_ anyway so the locking discipline holds everywhere.
    util::MutexLock l(&mu_);
    next_file_number_ = manifest.next_file_number;

    for (const auto& entry : manifest.components) {
      ComponentPtr comp;
      s = OpenComponent(entry.file_number, &comp, options_.use_bloom);
      if (!s.ok()) return s;
      if (options_.background.paranoid_checks) {
        uint64_t bad_offset = 0;
        s = comp->reader->VerifyAllBlocks(&bad_offset);
        if (!s.ok()) return s;
      }
      switch (entry.slot) {
        case Manifest::Slot::kC1:
          c1_ = comp;
          c1_data_bytes_.store(comp->reader->data_bytes());
          break;
        case Manifest::Slot::kC1Prime:
          c1_prime_ = comp;
          break;
        case Manifest::Slot::kC2:
          c2_ = comp;
          break;
      }
    }
  }

  // Garbage from merges in flight at crash time: any .tree file the manifest
  // does not reference.
  if (!options_.read_only) {
    std::vector<std::string> children;
    if (env_->GetChildren(dir_, &children).ok()) {
      for (const std::string& name : children) {
        if (name.size() > 5 && name.substr(name.size() - 5) == ".tree") {
          uint64_t num = strtoull(name.c_str(), nullptr, 10);
          bool referenced = false;
          for (const auto& entry : manifest.components) {
            if (entry.file_number == num) referenced = true;
          }
          if (!referenced && env_->RemoveFile(dir_ + "/" + name).ok()) {
            stats_.orphans_scavenged.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
  }

  runner_ =
      std::make_unique<engine::BackgroundRunner>(env_, options_.background);

  engine::WriteFrontend::Options fopts;
  fopts.env = env_;
  fopts.durability = options_.durability;
  fopts.read_only = options_.read_only;
  fopts.before_write = [this]() -> Status {
    Status bg = runner_->BackgroundError();
    if (!bg.ok()) return bg;
    ApplyBackpressure();
    // Re-check after the stall: the error may have latched while we waited.
    return runner_->BackgroundError();
  };
  fopts.after_write = [this] { MaybeScheduleMerge1(); };
  // Every memtable swap republishes the read view. The hook runs inside the
  // front-end's writer exclusion, so the view containing a freshly-installed
  // active memtable is visible to readers before any write into it can be
  // acknowledged (read-your-writes).
  fopts.on_memtable_change = [this] {
    util::MutexLock l(&mu_);
    PublishView();
  };
  frontend_ = std::make_unique<engine::WriteFrontend>(
      fopts, Manifest::LogFileName(dir_));

  // Recover recent writes from the logical log; the front-end restarts the
  // log with the survivors so the new log is self-contained.
  s = frontend_->Recover(manifest.last_sequence);
  if (!s.ok()) return s;

  {
    // First publication: no readers exist before Open returns, so this is
    // the view every reader starts from.
    util::MutexLock l(&mu_);
    PublishView();
  }

  if (!options_.read_only) {
    runner_->AddJob({.name = "merge1",
                     .pending = [this] { return Merge1Pending(); },
                     .run = [this] { return RunMerge1Pass(); },
                     .passes = &stats_.merge1_passes,
                     .retries = &stats_.merge_retries,
                     .io_priority = engine::IoPriority::kMerge1});
    runner_->AddJob({.name = "merge2",
                     .pending = [this] { return Merge2Pending(); },
                     .run = [this] { return RunMerge2Pass(); },
                     .passes = &stats_.merge2_passes,
                     .retries = &stats_.merge_retries,
                     .io_priority = engine::IoPriority::kCompaction});
    runner_->Start();
  }
  return Status::OK();
}

Status BlsmTree::OpenComponent(uint64_t file_number, ComponentPtr* out,
                               bool with_bloom_expected) const {
  (void)with_bloom_expected;
  auto comp = std::make_shared<Component>();
  comp->env = env_;
  comp->file_number = file_number;
  comp->fname = Manifest::TreeFileName(dir_, file_number);
  Status s = sstree::TreeReader::Open(env_, cache_.get(), file_number,
                                      comp->fname, &comp->reader);
  if (!s.ok()) return s;
  *out = std::move(comp);
  return Status::OK();
}

BlsmTree::~BlsmTree() {
  if (runner_ != nullptr) runner_->Stop();
  if (frontend_ != nullptr) {
    frontend_->Close().IgnoreError("destructor has no caller to report to");
  }
}

// --- read views / state ------------------------------------------------------

BlsmTree::ReadViewPtr BlsmTree::PinView() {
  stats_.views_pinned.fetch_add(1, std::memory_order_relaxed);
  return view_.load();
}

void BlsmTree::PublishView() {
  // Rebuilds the view from current state. Publication points cover every
  // structural transition: merge installs call this directly (under mu_,
  // with the output component already in place but the consumed memtable
  // not yet dropped), and memtable swaps reach it through the front-end's
  // on_memtable_change hook (with the install already published). Either
  // way a record crossing levels is present in BOTH the old and the new
  // home for at least one published view — a reader may observe it twice
  // (shadowed by sequence number) but can never miss it.
  auto view = std::make_shared<ReadView>();
  engine::MemtablePairPtr pair = frontend_->Pair();
  view->mem = pair->active;
  view->mem_old = pair->frozen;
  view->c1 = c1_;
  view->c1_prime = c1_prime_;
  view->c2 = c2_;
  view_.store(std::move(view));
  // Every publication is a structural change that may have freed C0 space
  // or merge headroom: wake any writer stalled on it.
  stall_tracker_.NotifyChange();
}

double BlsmTree::CurrentR() const {
  // Variable R (§2.3.1): with a three-level tree, R = sqrt(|data| / |C0|).
  uint64_t disk = 0;
  if (c1_ != nullptr) disk += c1_->reader->data_bytes();
  if (c1_prime_ != nullptr) disk += c1_prime_->reader->data_bytes();
  if (c2_ != nullptr) disk += c2_->reader->data_bytes();
  double r = std::sqrt(static_cast<double>(disk + options_.c0_target_bytes) /
                       static_cast<double>(options_.c0_target_bytes));
  return std::max(options_.min_r, r);
}

SchedulerState BlsmTree::ComputeSchedulerState() const {
  SchedulerState s;
  s.c0_live_bytes = frontend_->ActiveLiveBytes();
  util::MutexLock l(&mu_);
  s.c0_target_bytes = options_.c0_target_bytes;
  s.merge1_active = progress1_.active.load(std::memory_order_relaxed);
  s.merge1_inprogress = progress1_.inprogress();
  s.merge2_active = progress2_.active.load(std::memory_order_relaxed);
  s.merge2_inprogress = progress2_.inprogress();
  s.c1_prime_exists = c1_prime_ != nullptr;

  // outprogress_1 (§4.1): how close C1 is to triggering the next hand-off,
  // counting completed C0-sized fills plus the current merge's inprogress.
  double r = CurrentR();
  double ceil_r = std::ceil(r);
  double fills = std::floor(
      static_cast<double>(c1_data_bytes_.load(std::memory_order_relaxed)) /
      static_cast<double>(options_.c0_target_bytes));
  fills = std::min(fills, ceil_r - 1.0);
  s.merge1_outprogress =
      std::min(1.0, (s.merge1_inprogress + fills) / ceil_r);
  return s;
}

uint64_t BlsmTree::OnDiskBytes() const {
  util::MutexLock l(&mu_);
  uint64_t total = 0;
  if (c1_ != nullptr) total += c1_->reader->data_bytes();
  if (c1_prime_ != nullptr) total += c1_prime_->reader->data_bytes();
  if (c2_ != nullptr) total += c2_->reader->data_bytes();
  return total;
}

uint64_t BlsmTree::C0LiveBytes() const {
  std::shared_ptr<MemTable> active, frozen;
  frontend_->Memtables(&active, &frozen);
  uint64_t total = active->LiveBytes();
  if (frozen != nullptr) total += frozen->LiveBytes();
  return total;
}

Status BlsmTree::BackgroundError() const { return runner_->BackgroundError(); }

// --- writes ---------------------------------------------------------------

void BlsmTree::ApplyBackpressure() {
  // Hard-blocked writers wait on the stall CondVar, which every structural
  // change signals (PublishView -> NotifyChange): a snowshovel truncation or
  // merge install wakes them immediately instead of at the next poll tick.
  // The wait keeps a timeout so an error latched while we sleep is noticed
  // within one interval — bounded stall escape, never a hang.
  constexpr uint64_t kBlockedWaitUs = 2000;
  uint64_t start_us = 0;
  while (!runner_->shutting_down()) {
    // If merges have latched an error they will never drain C0; the write
    // must escape the stall and report the error instead of hanging.
    if (!runner_->BackgroundError().ok()) break;
    SchedulerState state = ComputeSchedulerState();
    if (rate_controller_ != nullptr) rate_controller_->Observe(state.c0_fill());
    if (!scheduler_->WriteBlocked(state)) {
      uint64_t delay = scheduler_->WriteDelayMicros(state);
      if (delay > 0) {
        // One-shot proportional delay (the spring, §4.3): a deliberate
        // pause no event ends early, not a poll.
        if (start_us == 0) start_us = env_->NowMicros();
        env_->SleepForMicroseconds(delay);  // lint:allow(write-path-sleep) the spring's one-shot proportional delay IS the backpressure mechanism
      }
      break;
    }
    if (start_us == 0) start_us = env_->NowMicros();
    MaybeScheduleMerge1();
    runner_->Notify();
    stall_tracker_.WaitForChange(kBlockedWaitUs);
  }
  if (start_us != 0) {
    // Measured wall-clock stall, not accumulated sleep quanta.
    uint64_t now = env_->NowMicros();
    uint64_t stalled = now > start_us ? now - start_us : 1;
    stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
    stats_.write_stall_micros.fetch_add(stalled, std::memory_order_relaxed);
    engine::AtomicFetchMax(stats_.max_stall_micros, stalled);
    stall_tracker_.RecordStall(stalled);
  }
}

Status BlsmTree::WriteImpl(const Slice& key, RecordType type,
                           const Slice& value) {
  // The front-end runs the backpressure/error hooks, assigns the sequence
  // number, appends to the log, and inserts into C0.
  return frontend_->Write(key, type, value);
}

void BlsmTree::MaybeScheduleMerge1() {
  uint64_t live = frontend_->ActiveLiveBytes();
  bool trigger;
  if (options_.snowshovel) {
    trigger = live >= static_cast<uint64_t>(
                          options_.low_watermark *
                          static_cast<double>(options_.c0_target_bytes));
  } else {
    trigger = frontend_->HasFrozen() || live >= options_.c0_target_bytes;
  }
  if (trigger) runner_->Notify();
}

Status BlsmTree::Put(const Slice& key, const Slice& value) {
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  return WriteImpl(key, RecordType::kBase, value);
}

Status BlsmTree::Write(const kv::WriteBatch& batch) {
  for (const auto& e : batch.entries()) {
    switch (e.type) {
      case RecordType::kBase:
        stats_.puts.fetch_add(1, std::memory_order_relaxed);
        break;
      case RecordType::kTombstone:
        stats_.deletes.fetch_add(1, std::memory_order_relaxed);
        break;
      case RecordType::kDelta:
        stats_.deltas.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  return frontend_->Write(batch);
}

Status BlsmTree::Delete(const Slice& key) {
  stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  return WriteImpl(key, RecordType::kTombstone, Slice());
}

Status BlsmTree::WriteDelta(const Slice& key, const Slice& delta) {
  stats_.deltas.fetch_add(1, std::memory_order_relaxed);
  return WriteImpl(key, RecordType::kDelta, delta);
}

Status BlsmTree::InsertIfNotExists(const Slice& key, const Slice& value) {
  stats_.insert_if_not_exists.fetch_add(1, std::memory_order_relaxed);
  ReadViewPtr view = PinView();
  bool exists = false;
  Status s = KeyExistsProbe(key, *view, &exists);
  if (!s.ok()) return s;
  if (exists) return Status::KeyExists(key);
  return WriteImpl(key, RecordType::kBase, value);
}

Status BlsmTree::KeyExistsProbe(const Slice& key, const ReadView& view,
                                bool* exists) {
  // The newest version decides: a base OR a delta means the key reads back
  // a value (deltas define one even over a tombstone or nothing, §2.3); a
  // tombstone means it does not. C0 (and C0') first: free.
  bool decided = false;
  auto probe_mem = [&](const std::shared_ptr<MemTable>& mem) {
    if (decided || mem == nullptr) return;
    mem->ForEachVersion(key, [&](RecordType t, const Slice&) {
      *exists = t != RecordType::kTombstone;
      decided = true;
      return false;
    });
  };
  probe_mem(view.mem);
  probe_mem(view.mem_old);
  if (decided) return Status::OK();

  // On-disk components: the Bloom filters prove absence with zero seeks
  // (§3.1.2); a positive filter requires one real lookup.
  const Component* comps[3] = {view.c1.get(), view.c1_prime.get(),
                               view.c2.get()};
  for (const Component* comp : comps) {
    if (comp == nullptr) continue;
    bool use_bloom =
        options_.use_bloom &&
        (options_.bloom_on_largest || comp != view.c2.get());
    if (use_bloom && !comp->reader->MayContain(key)) {
      stats_.bloom_skips.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Status io;
    auto rec = comp->reader->Get(key, use_bloom, &io);
    if (!io.ok()) return io;
    if (rec.has_value()) {
      if (rec->type == RecordType::kBase) {
        *exists = true;
        return Status::OK();
      }
      if (rec->type == RecordType::kTombstone) {
        *exists = false;
        return Status::OK();
      }
      // Delta: the key effectively has a value (deltas against a missing
      // base still produce one at read time).
      *exists = true;
      return Status::OK();
    }
  }
  *exists = false;
  return Status::OK();
}

// --- reads ----------------------------------------------------------------

Status BlsmTree::FinishLookup(const Slice& key, bool have_base,
                              const std::string& base,
                              std::vector<std::string>& deltas_newest_first,
                              std::string* value) const {
  if (!have_base && deltas_newest_first.empty()) return Status::NotFound(key);
  if (have_base && deltas_newest_first.empty()) {
    *value = base;
    return Status::OK();
  }
  std::vector<Slice> oldest_first;
  oldest_first.reserve(deltas_newest_first.size());
  for (auto it = deltas_newest_first.rbegin();
       it != deltas_newest_first.rend(); ++it) {
    oldest_first.emplace_back(*it);
  }
  Slice base_slice(base);
  if (!merge_op_->FullMerge(key, have_base ? &base_slice : nullptr,
                            oldest_first, value)) {
    return Status::Corruption("merge operator rejected operands");
  }
  return Status::OK();
}

Status BlsmTree::Get(const Slice& key, std::string* value) {
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  ReadViewPtr view = PinView();
  if (options_.early_read_termination) {
    return GetWithEarlyTermination(key, *view, value);
  }
  return GetExhaustive(key, *view, value);
}

Status BlsmTree::GetWithEarlyTermination(const Slice& key,
                                         const ReadView& view,
                                         std::string* value) {
  // §3.1.1: components are searched newest-first and the lookup stops at the
  // first base record or tombstone.
  std::vector<std::string> deltas;
  bool terminated = false;
  bool have_base = false;
  bool deleted = false;
  std::string base;

  auto search_mem = [&](const std::shared_ptr<MemTable>& mem) {
    if (terminated || mem == nullptr) return;
    mem->ForEachVersion(key, [&](RecordType t, const Slice& v) {
      switch (t) {
        case RecordType::kBase:
          base.assign(v.data(), v.size());
          have_base = true;
          terminated = true;
          break;
        case RecordType::kTombstone:
          deleted = true;
          terminated = true;
          break;
        case RecordType::kDelta:
          deltas.emplace_back(v.data(), v.size());
          break;
      }
      return !terminated;
    });
  };
  search_mem(view.mem);
  search_mem(view.mem_old);

  const Component* comps[3] = {view.c1.get(), view.c1_prime.get(),
                               view.c2.get()};
  for (const Component* comp : comps) {
    if (terminated) break;
    if (comp == nullptr) continue;
    bool use_bloom =
        options_.use_bloom &&
        (options_.bloom_on_largest || comp != view.c2.get());
    if (use_bloom && !comp->reader->MayContain(key)) {
      stats_.bloom_skips.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Status io;
    auto rec = comp->reader->Get(key, use_bloom, &io);
    if (!io.ok()) return io;
    if (!rec.has_value()) continue;
    switch (rec->type) {
      case RecordType::kBase:
        base = std::move(rec->value);
        have_base = true;
        terminated = true;
        break;
      case RecordType::kTombstone:
        deleted = true;
        terminated = true;
        break;
      case RecordType::kDelta:
        deltas.emplace_back(std::move(rec->value));
        break;
    }
  }

  (void)deleted;  // a tombstone simply means "no base below"
  return FinishLookup(key, have_base, base, deltas, value);
}

Status BlsmTree::GetExhaustive(const Slice& key, const ReadView& view,
                               std::string* value) {
  // Ablation for §3.1.1: visit every component unconditionally, collect all
  // versions, and reconstruct by sequence number. Models systems that assign
  // reads to components non-deterministically and cannot stop early.
  struct Version {
    SequenceNumber seq;
    RecordType type;
    std::string value;
  };
  std::vector<Version> versions;

  auto collect_mem = [&](const std::shared_ptr<MemTable>& mem) {
    if (mem == nullptr) return;
    // ForEachVersion already stops below a terminator, which is harmless
    // here: anything below it is shadowed in every reconstruction.
    SequenceNumber synth = kMaxSequenceNumber;
    mem->ForEachVersion(key, [&](RecordType t, const Slice& v) {
      versions.push_back(Version{synth--, t, std::string(v.data(), v.size())});
      return true;
    });
  };
  collect_mem(view.mem);
  collect_mem(view.mem_old);

  const Component* comps[3] = {view.c1.get(), view.c1_prime.get(),
                               view.c2.get()};
  SequenceNumber disk_rank = kMaxSequenceNumber / 2;
  for (const Component* comp : comps) {
    if (comp == nullptr) continue;
    Status io;
    auto rec = comp->reader->Get(key, /*use_bloom=*/false, &io);
    if (!io.ok()) return io;
    if (rec.has_value()) {
      versions.push_back(Version{disk_rank, rec->type, std::move(rec->value)});
    }
    disk_rank--;  // freshness ordering across components
  }

  std::stable_sort(versions.begin(), versions.end(),
                   [](const Version& a, const Version& b) {
                     return a.seq > b.seq;
                   });

  std::vector<std::string> deltas;
  bool have_base = false;
  std::string base;
  for (const Version& v : versions) {
    if (v.type == RecordType::kBase) {
      base = v.value;
      have_base = true;
      break;
    }
    if (v.type == RecordType::kTombstone) break;
    deltas.push_back(v.value);
  }
  return FinishLookup(key, have_base, base, deltas, value);
}

std::vector<Status> BlsmTree::MultiGet(const std::vector<Slice>& keys,
                                       std::vector<std::string>* values) {
  stats_.gets.fetch_add(keys.size(), std::memory_order_relaxed);
  stats_.multiget_batches.fetch_add(1, std::memory_order_relaxed);
  ReadViewPtr view = PinView();  // one pin: a consistent point for the batch
  values->assign(keys.size(), std::string());
  std::vector<Status> statuses(keys.size());
  if (keys.empty()) return statuses;

  if (!options_.early_read_termination) {
    // The ablation path has no early termination to batch around; every key
    // visits every component anyway.
    for (size_t i = 0; i < keys.size(); i++) {
      statuses[i] = GetExhaustive(keys[i], *view, &(*values)[i]);
    }
    return statuses;
  }

  // Per-key lookup state, carried across components (§3.1.1 early
  // termination, but advanced batch-wise instead of key-wise).
  struct Lookup {
    bool terminated = false;
    bool failed = false;  // statuses[i] already holds the error
    bool have_base = false;
    std::string base;
    std::vector<std::string> deltas;
  };
  std::vector<Lookup> lookups(keys.size());

  // Memtable pass, newest first (C0 then C0'): free, no batching needed.
  auto search_mem = [&](const std::shared_ptr<MemTable>& mem) {
    if (mem == nullptr) return;
    for (size_t i = 0; i < keys.size(); i++) {
      Lookup& lk = lookups[i];
      if (lk.terminated) continue;
      mem->ForEachVersion(keys[i], [&](RecordType t, const Slice& v) {
        switch (t) {
          case RecordType::kBase:
            lk.base.assign(v.data(), v.size());
            lk.have_base = true;
            lk.terminated = true;
            break;
          case RecordType::kTombstone:
            lk.terminated = true;
            break;
          case RecordType::kDelta:
            lk.deltas.emplace_back(v.data(), v.size());
            break;
        }
        return !lk.terminated;
      });
    }
  };
  search_mem(view->mem);
  search_mem(view->mem_old);

  // Sort the probe set once; every component below is visited in ascending
  // key order so adjacent keys in the same block decode it once.
  std::vector<size_t> order(keys.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return keys[a].compare(keys[b]) < 0;
  });

  const Component* comps[3] = {view->c1.get(), view->c1_prime.get(),
                               view->c2.get()};
  std::vector<size_t> admitted;
  std::vector<Slice> probe_keys;
  std::vector<Status> io;
  for (const Component* comp : comps) {
    if (comp == nullptr) continue;
    const bool use_bloom =
        options_.use_bloom &&
        (options_.bloom_on_largest || comp != view->c2.get());

    // All of this component's Bloom probes together, still in key order.
    admitted.clear();
    probe_keys.clear();
    for (size_t i : order) {
      if (lookups[i].terminated) continue;
      if (use_bloom && !comp->reader->MayContain(keys[i])) {
        stats_.bloom_skips.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      admitted.push_back(i);
      probe_keys.push_back(keys[i]);
    }
    if (admitted.empty()) continue;

    // One coalesced visit of the component for the surviving keys.
    uint64_t coalesced = 0;
    auto recs = comp->reader->MultiGet(probe_keys, &io, &coalesced);
    stats_.blocks_coalesced.fetch_add(coalesced, std::memory_order_relaxed);
    for (size_t j = 0; j < admitted.size(); j++) {
      Lookup& lk = lookups[admitted[j]];
      if (!io[j].ok()) {
        statuses[admitted[j]] = io[j];
        lk.failed = true;
        lk.terminated = true;
        continue;
      }
      if (!recs[j].has_value()) continue;
      switch (recs[j]->type) {
        case RecordType::kBase:
          lk.base = std::move(recs[j]->value);
          lk.have_base = true;
          lk.terminated = true;
          break;
        case RecordType::kTombstone:
          lk.terminated = true;
          break;
        case RecordType::kDelta:
          lk.deltas.emplace_back(std::move(recs[j]->value));
          break;
      }
    }
  }

  for (size_t i = 0; i < keys.size(); i++) {
    if (lookups[i].failed) continue;
    statuses[i] = FinishLookup(keys[i], lookups[i].have_base, lookups[i].base,
                               lookups[i].deltas, &(*values)[i]);
  }
  return statuses;
}

Status BlsmTree::ReadModifyWrite(
    const Slice& key,
    const std::function<std::string(const std::string& old, bool absent)>&
        update) {
  std::string old;
  Status s = Get(key, &old);
  bool absent = s.IsNotFound();
  if (!s.ok() && !absent) return s;
  return Put(key, update(old, absent));
}

// --- scans ------------------------------------------------------------------

std::unique_ptr<ScanIterator> BlsmTree::NewScanIterator(
    uint64_t readahead_bytes) {
  ReadViewPtr view = PinView();
  std::vector<std::unique_ptr<InternalIterator>> children;
  std::vector<std::shared_ptr<void>> pins;
  children.push_back(NewMemTableIterator(view->mem));
  if (view->mem_old != nullptr) {
    children.push_back(NewMemTableIterator(view->mem_old));
  }
  for (const ComponentPtr& comp : {view->c1, view->c1_prime, view->c2}) {
    if (comp == nullptr) continue;
    children.push_back(NewTreeComponentIterator(
        comp->reader.get(), /*sequential=*/false, readahead_bytes));
    pins.push_back(comp);
  }
  auto merged = std::make_unique<MergingIterator>(std::move(children));
  return std::unique_ptr<ScanIterator>(
      new ScanIterator(std::move(merged), merge_op_, std::move(pins)));
}

Status BlsmTree::Scan(const Slice& start, size_t limit,
                      std::vector<std::pair<std::string, std::string>>* out,
                      uint64_t readahead_bytes) {
  out->clear();
  auto it = NewScanIterator(readahead_bytes);
  for (it->Seek(start); it->Valid() && out->size() < limit; it->Next()) {
    out->emplace_back(it->key().ToString(), it->value().ToString());
  }
  return it->status();
}

ScanIterator::ScanIterator(std::unique_ptr<InternalIterator> iter,
                           std::shared_ptr<const MergeOperator> merge_op,
                           std::vector<std::shared_ptr<void>> pins)
    : iter_(std::move(iter)),
      merge_op_(std::move(merge_op)),
      pins_(std::move(pins)) {}

void ScanIterator::SeekToFirst() {
  iter_->SeekToFirst();
  CollapseCurrent();
}

void ScanIterator::Seek(const Slice& user_key) {
  iter_->Seek(InternalLookupKey(user_key));
  CollapseCurrent();
}

void ScanIterator::Next() { CollapseCurrent(); }

void ScanIterator::CollapseCurrent() {
  // The underlying iterator is positioned at the first unprocessed version.
  valid_ = false;
  while (iter_->Valid()) {
    // A child iterator that died on an I/O or checksum error reports
    // through status(); stopping silently here would truncate the scan.
    if (!iter_->status().ok()) {
      status_ = iter_->status();
      return;
    }
    ParsedInternalKey first;
    if (!ParseInternalKey(iter_->key(), &first)) {
      status_ = Status::Corruption("bad internal key in scan");
      return;
    }
    key_.assign(first.user_key.data(), first.user_key.size());

    bool have_base = false;
    bool have_tombstone = false;
    std::string base;
    std::vector<std::string> deltas_newest_first;

    while (iter_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(iter_->key(), &parsed)) {
        status_ = Status::Corruption("bad internal key in scan");
        return;
      }
      if (parsed.user_key != Slice(key_)) break;
      if (!have_base && !have_tombstone) {
        switch (parsed.type) {
          case RecordType::kBase:
            base.assign(iter_->value().data(), iter_->value().size());
            have_base = true;
            break;
          case RecordType::kTombstone:
            have_tombstone = true;
            break;
          case RecordType::kDelta:
            deltas_newest_first.emplace_back(iter_->value().data(),
                                             iter_->value().size());
            break;
        }
      }
      iter_->Next();
    }

    if (!have_base && deltas_newest_first.empty()) {
      continue;  // deleted key (or empty group): skip to the next user key
    }
    std::vector<Slice> oldest_first;
    for (auto rit = deltas_newest_first.rbegin();
         rit != deltas_newest_first.rend(); ++rit) {
      oldest_first.emplace_back(*rit);
    }
    if (oldest_first.empty()) {
      value_ = std::move(base);
    } else {
      Slice base_slice(base);
      if (!merge_op_->FullMerge(key_, have_base ? &base_slice : nullptr,
                                oldest_first, &value_)) {
        status_ = Status::Corruption("merge operator rejected operands");
        return;
      }
    }
    valid_ = true;
    return;
  }
  // Exhausted — distinguish a clean end from a child that died on an error
  // (e.g. a corrupt block): the scan must not look merely shorter.
  if (status_.ok()) status_ = iter_->status();
}

// --- merges -----------------------------------------------------------------

bool BlsmTree::MergePauseWait(int which) {
  while (!runner_->shutting_down()) {
    if (force_promote_.load(std::memory_order_relaxed) ||
        pacing_override_.load(std::memory_order_relaxed) > 0) {
      return true;  // foreground compaction / drain override
    }
    SchedulerState state = ComputeSchedulerState();
    if (rate_controller_ != nullptr) rate_controller_->Observe(state.c0_fill());
    bool paused = (which == 1) ? scheduler_->PauseMerge1(state)
                               : scheduler_->PauseMerge2(state);
    if (!paused) return true;
    env_->SleepForMicroseconds(kMergePausePollUs);  // lint:allow(write-path-sleep) merge-thread pacing between batches, not a writer stall
  }
  return false;
}

bool BlsmTree::Merge1Pending() {
  bool requested;
  {
    util::MutexLock l(&mu_);
    requested = merge1_done_gen_ < merge1_request_gen_;
  }
  uint64_t live = frontend_->ActiveLiveBytes();
  if (options_.snowshovel) {
    return requested ||
           live >= static_cast<uint64_t>(
                       options_.low_watermark *
                       static_cast<double>(options_.c0_target_bytes));
  }
  return requested || frontend_->HasFrozen() ||
         live >= options_.c0_target_bytes;
}

bool BlsmTree::Merge2Pending() {
  util::MutexLock l(&mu_);
  return c1_prime_ != nullptr;
}

Status BlsmTree::RunMerge1Pass() {
  // Reading the request generation BEFORE snapshotting the inputs is what
  // makes the Flush() handshake sound: everything written before the request
  // was issued is in the inputs this pass merges.
  uint64_t pass_gen;
  ComponentPtr old_c1;
  {
    util::MutexLock l(&mu_);
    pass_gen = merge1_request_gen_;
    old_c1 = c1_;
  }

  // Non-snowshovel modes partition C0: freeze the current memtable as C0'
  // and open a fresh C0 for incoming writes (§4.2.1). A frozen memtable left
  // over from a retried pass is reused.
  if (!options_.snowshovel && !frontend_->HasFrozen()) {
    Status fs = frontend_->Freeze(/*block=*/true);
    if (!fs.ok()) return fs;
  }
  std::shared_ptr<MemTable> input_mem = options_.snowshovel
                                            ? frontend_->ActiveMemtable()
                                            : frontend_->FrozenMemtable();
  if (input_mem == nullptr) return Status::OK();

  uint64_t input_total = input_mem->LiveBytes() +
                         (old_c1 != nullptr ? old_c1->reader->data_bytes() : 0);
  if (input_total == 0) {
    // Nothing to do; clear C0' so the job does not spin, and count the empty
    // pass toward the flush handshake (a flush of an empty tree succeeds).
    if (!options_.snowshovel) frontend_->DropFrozen();
    util::MutexLock l(&mu_);
    merge1_done_gen_ = std::max(merge1_done_gen_, pass_gen);
    return Status::OK();
  }
  progress1_.bytes_read.store(0);
  progress1_.input_total.store(input_total);
  progress1_.active.store(true);

  uint64_t file_number;
  {
    util::MutexLock l(&mu_);
    file_number = next_file_number_++;
  }
  std::string fname = Manifest::TreeFileName(dir_, file_number);
  sstree::TreeBuilderOptions bopts;
  bopts.block_size = options_.block_size;
  bopts.bloom_bits_per_key = options_.bloom_bits_per_key;
  bopts.build_bloom = options_.use_bloom;
  // Write-behind: sealed blocks are appended on a single ordered worker so
  // the merge loop overlaps CPU (merge + compress/checksum) with file I/O.
  // One worker keeps the append order the file format requires.
  engine::TaskPipeline append_pipeline(/*max_concurrency=*/1);
  bopts.append_executor = &append_pipeline;
  sstree::TreeBuilder builder(env_, fname, bopts);
  Status s = builder.Open();
  if (!s.ok()) {
    progress1_.active.store(false);
    return s;
  }

  std::vector<std::unique_ptr<InternalIterator>> children;
  children.push_back(NewMemTableIterator(input_mem));
  if (old_c1 != nullptr) {
    children.push_back(
        NewTreeComponentIterator(old_c1->reader.get(), /*sequential=*/true));
  }
  MergingIterator merged(std::move(children));
  merged.SeekToFirst();

  uint64_t consumed = 0;
  size_t since_check = 0;
  std::string out_ikey;
  while (merged.Valid()) {
    GroupResult group;
    s = CollapseGroup(&merged, merge_op_.get(), /*bottom=*/false, &consumed,
                      &group);
    if (!s.ok()) break;
    progress1_.bytes_read.store(std::min(consumed, input_total));
    if (group.emit) {
      out_ikey.clear();
      AppendInternalKey(&out_ikey, group.user_key, group.seq, group.type);
      s = builder.Add(out_ikey, group.value);
      if (!s.ok()) break;
    }
    if (++since_check >= options_.merge_batch_entries) {
      since_check = 0;
      if (!MergePauseWait(1)) {  // shutdown
        builder.Abandon();
        env_->RemoveFile(fname).IgnoreError(
            "partial merge output; orphan scavenge reclaims it");
        progress1_.active.store(false);
        return Status::OK();
      }
    }
  }
  if (s.ok()) s = merged.status();
  if (!s.ok()) {
    builder.Abandon();
    env_->RemoveFile(fname).IgnoreError(
        "failed merge output; orphan scavenge reclaims it");
    progress1_.active.store(false);
    return s;
  }

  s = builder.Finish();
  if (!s.ok()) {
    env_->RemoveFile(fname).IgnoreError(
        "failed merge output; orphan scavenge reclaims it");
    progress1_.active.store(false);
    return s;
  }
  stats_.merge1_bytes_out.fetch_add(builder.file_size(),
                                    std::memory_order_relaxed);

  ComponentPtr fresh;
  s = OpenComponent(file_number, &fresh, options_.use_bloom);
  if (!s.ok()) {
    env_->RemoveFile(fname).IgnoreError(
        "failed merge output; orphan scavenge reclaims it");
    progress1_.active.store(false);
    return s;
  }

  // Install, then decide the hand-off (promotion of C1 to C1'). The
  // manifest write (an fsync) happens after mu_ is released; the replaced
  // component is unlinked only once the new manifest is durable.
  Manifest manifest;
  uint64_t manifest_version;
  {
    util::MutexLock l(&mu_);
    c1_ = fresh;
    c1_data_bytes_.store(fresh->reader->data_bytes());

    double r = CurrentR();
    bool promote =
        c1_prime_ == nullptr &&
        (force_promote_.load() ||
         c1_data_bytes_.load() >=
             static_cast<uint64_t>(
                 r * static_cast<double>(options_.c0_target_bytes)));
    if (promote) {
      c1_prime_ = c1_;
      c1_.reset();
      c1_data_bytes_.store(0);
      force_promote_.store(false);
    }
    // Readers must see the output component before the consumed memtable is
    // dropped below (double-observation, never loss).
    PublishView();
    manifest = BuildManifestLocked(&manifest_version);
  }
  // The consumed C0' becomes droppable only after the view containing its
  // component was published above: the drop triggers another publication
  // (via on_memtable_change), so the record sequence a reader can observe
  // goes "in both places" -> "component only" — duplicated at worst, never
  // lost.
  if (!options_.snowshovel) frontend_->DropFrozen();
  s = SaveManifest(manifest, manifest_version);
  if (!s.ok()) {
    progress1_.active.store(false);
    return s;
  }
  if (old_c1 != nullptr) old_c1->obsolete.store(true);
  runner_->Notify();  // wake merge2 if we promoted

  // Truncate the log to cover exactly the surviving memtable contents. The
  // snowshovel variant first replaces C0 by its unconsumed residue
  // (reclaiming arena memory); the front-end owns the writer-exclusion /
  // durability subtleties of the restart.
  s = frontend_->TruncateToActive(/*consume=*/options_.snowshovel);
  if (s.ok()) {
    util::MutexLock l(&mu_);
    merge1_done_gen_ = std::max(merge1_done_gen_, pass_gen);
  }
  progress1_.active.store(false);
  return s;
}

Status BlsmTree::RunMerge2Pass() {
  ComponentPtr input_c1p, old_c2;
  {
    util::MutexLock l(&mu_);
    input_c1p = c1_prime_;
    old_c2 = c2_;
  }
  if (input_c1p == nullptr) return Status::OK();

  uint64_t input_total = input_c1p->reader->data_bytes() +
                         (old_c2 != nullptr ? old_c2->reader->data_bytes() : 0);
  progress2_.bytes_read.store(0);
  progress2_.input_total.store(std::max<uint64_t>(input_total, 1));
  progress2_.active.store(true);

  uint64_t file_number;
  {
    util::MutexLock l(&mu_);
    file_number = next_file_number_++;
  }
  std::string fname = Manifest::TreeFileName(dir_, file_number);
  sstree::TreeBuilderOptions bopts;
  bopts.block_size = options_.block_size;
  bopts.bloom_bits_per_key = options_.bloom_bits_per_key;
  // §3.1.2: the largest component's filter is what makes "insert if not
  // exists" seek-free; bloom_on_largest=false is the ablation.
  bopts.build_bloom = options_.use_bloom && options_.bloom_on_largest;
  // Same write-behind arrangement as the C0→C1 merge above.
  engine::TaskPipeline append_pipeline(/*max_concurrency=*/1);
  bopts.append_executor = &append_pipeline;
  sstree::TreeBuilder builder(env_, fname, bopts);
  Status s = builder.Open();
  if (!s.ok()) {
    progress2_.active.store(false);
    return s;
  }

  std::vector<std::unique_ptr<InternalIterator>> children;
  children.push_back(
      NewTreeComponentIterator(input_c1p->reader.get(), /*sequential=*/true));
  if (old_c2 != nullptr) {
    children.push_back(
        NewTreeComponentIterator(old_c2->reader.get(), /*sequential=*/true));
  }
  MergingIterator merged(std::move(children));
  merged.SeekToFirst();

  uint64_t consumed = 0;
  size_t since_check = 0;
  std::string out_ikey;
  while (merged.Valid()) {
    GroupResult group;
    s = CollapseGroup(&merged, merge_op_.get(), /*bottom=*/true, &consumed,
                      &group);
    if (!s.ok()) break;
    progress2_.bytes_read.store(
        std::min(consumed, progress2_.input_total.load()));
    if (group.emit) {
      out_ikey.clear();
      AppendInternalKey(&out_ikey, group.user_key, group.seq, group.type);
      s = builder.Add(out_ikey, group.value);
      if (!s.ok()) break;
    }
    if (++since_check >= options_.merge_batch_entries) {
      since_check = 0;
      if (!MergePauseWait(2)) {
        builder.Abandon();
        env_->RemoveFile(fname).IgnoreError(
            "partial merge output; orphan scavenge reclaims it");
        progress2_.active.store(false);
        return Status::OK();
      }
    }
  }
  if (s.ok()) s = merged.status();
  if (!s.ok()) {
    builder.Abandon();
    env_->RemoveFile(fname).IgnoreError(
        "failed merge output; orphan scavenge reclaims it");
    progress2_.active.store(false);
    return s;
  }

  s = builder.Finish();
  if (!s.ok()) {
    env_->RemoveFile(fname).IgnoreError(
        "failed merge output; orphan scavenge reclaims it");
    progress2_.active.store(false);
    return s;
  }
  stats_.merge2_bytes_out.fetch_add(builder.file_size(),
                                    std::memory_order_relaxed);

  ComponentPtr fresh;
  s = OpenComponent(file_number, &fresh, options_.use_bloom);
  if (!s.ok()) {
    env_->RemoveFile(fname).IgnoreError(
        "failed merge output; orphan scavenge reclaims it");
    progress2_.active.store(false);
    return s;
  }

  Manifest manifest;
  uint64_t manifest_version;
  {
    util::MutexLock l(&mu_);
    c2_ = fresh;
    c1_prime_.reset();
    // C1' and the old C2 are fully contained in the new C2; views pinned
    // before this store keep the replaced files alive (and readable) until
    // their last reader drops them.
    PublishView();
    manifest = BuildManifestLocked(&manifest_version);
  }
  s = SaveManifest(manifest, manifest_version);
  if (!s.ok()) {
    progress2_.active.store(false);
    return s;
  }
  // Inputs become garbage only after the manifest that drops them is
  // durable (a crash in between must still find them referenced).
  if (old_c2 != nullptr) old_c2->obsolete.store(true);
  input_c1p->obsolete.store(true);
  progress2_.active.store(false);
  runner_->Notify();
  return Status::OK();
}

Manifest BlsmTree::BuildManifestLocked(uint64_t* version) {
  Manifest manifest;
  manifest.next_file_number = next_file_number_;
  manifest.last_sequence = frontend_->LastSequence();
  if (c1_ != nullptr) {
    manifest.components.push_back(
        {Manifest::Slot::kC1, c1_->file_number});
  }
  if (c1_prime_ != nullptr) {
    manifest.components.push_back(
        {Manifest::Slot::kC1Prime, c1_prime_->file_number});
  }
  if (c2_ != nullptr) {
    manifest.components.push_back(
        {Manifest::Slot::kC2, c2_->file_number});
  }
  *version = ++manifest_build_version_;
  return manifest;
}

Status BlsmTree::SaveManifest(const Manifest& manifest, uint64_t version) {
  util::MutexLock l(&manifest_io_mu_);
  if (version <= manifest_written_version_) {
    // A newer snapshot has already been written (the other merge thread
    // installed after us but reached the file first).
    return Status::OK();
  }
  Status s = manifest.Save(env_, dir_);
  if (s.ok()) manifest_written_version_ = version;
  return s;
}

// --- maintenance entry points -------------------------------------------------

Status BlsmTree::Flush() {
  if (options_.read_only) return Status::NotSupported("engine is read-only");
  pacing_override_.fetch_add(1);
  Status s = runner_->BackgroundError();
  if (!s.ok()) {
    pacing_override_.fetch_sub(1);
    return s;
  }
  // Handshake with the merge-1 job: a pass already in flight snapshotted its
  // inputs (and its generation) before this request; only a pass that starts
  // at our generation or later is guaranteed to cover everything.
  uint64_t my_gen;
  {
    util::MutexLock l(&mu_);
    my_gen = ++merge1_request_gen_;
  }
  runner_->Notify();
  s = runner_->WaitUntil([this, my_gen] {
    util::MutexLock l(&mu_);
    return merge1_done_gen_ >= my_gen;
  });
  pacing_override_.fetch_sub(1);
  return s;
}

Status BlsmTree::CompactToBottom() {
  Status s = Flush();
  if (!s.ok()) return s;
  force_promote_.store(true);
  // A second pass performs the promotion (it may have no data to merge).
  s = Flush();
  if (!s.ok()) {
    force_promote_.store(false);
    return s;
  }
  // Wait for merge2 to drain C1'.
  pacing_override_.fetch_add(1);
  s = runner_->WaitUntil([this] {
    util::MutexLock l(&mu_);
    return c1_prime_ == nullptr && !runner_->Running("merge2");
  });
  force_promote_.store(false);
  pacing_override_.fetch_sub(1);
  return s;
}

void BlsmTree::WaitForMergeIdle() {
  if (options_.read_only) return;
  // Drain at full speed: pacing is meant to shape concurrent workloads, not
  // to make an idle wait last forever.
  pacing_override_.fetch_add(1);
  runner_->WaitUntil([this] {
        if (runner_->AnyRunning() || Merge1Pending()) return false;
        util::MutexLock l(&mu_);
        return c1_prime_ == nullptr;
      })
      .IgnoreError(
          "idle-wait cut short by shutdown or a latched error; callers "
          "observe the latter via BackgroundError()");
}

}  // namespace blsm
