#include "lsm/blsm_tree.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "lsm/collapse.h"
#include "sstree/tree_builder.h"

namespace blsm {

namespace {

constexpr uint64_t kMergePausePollUs = 1000;

}  // namespace

// --- construction / open ------------------------------------------------------

BlsmTree::BlsmTree(const BlsmOptions& options, std::string dir)
    : options_(options), dir_(std::move(dir)) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  if (options_.shared_block_cache != nullptr) {
    cache_ = options_.shared_block_cache;
  } else if (options_.block_cache_bytes > 0) {
    cache_ = std::make_shared<BlockCache>(options_.block_cache_bytes);
  }  // else: no cache — every read hits the Env (cold-cache measurements)
  if (options_.scheduler == SchedulerKind::kSpringGear) {
    scheduler_ = std::make_unique<SpringGearScheduler>(
        options_.low_watermark, options_.high_watermark);
  } else {
    scheduler_ = MakeScheduler(options_.scheduler);
  }
  merge_op_ = options_.merge_operator != nullptr
                  ? options_.merge_operator
                  : std::make_shared<const AppendMergeOperator>();
  mem_ = std::make_shared<MemTable>();
}

Status BlsmTree::Open(const BlsmOptions& options, const std::string& dir,
                      std::unique_ptr<BlsmTree>* out) {
  auto tree = std::unique_ptr<BlsmTree>(new BlsmTree(options, dir));
  Status s = tree->OpenImpl();
  if (!s.ok()) return s;
  *out = std::move(tree);
  return Status::OK();
}

Status BlsmTree::OpenImpl() {
  Status s = env_->CreateDir(dir_);
  if (!s.ok()) return s;

  Manifest manifest;
  s = Manifest::Load(env_, dir_, &manifest);
  if (s.IsNotFound()) {
    manifest = Manifest{};
    s = manifest.Save(env_, dir_);
  }
  if (!s.ok()) return s;

  next_file_number_ = manifest.next_file_number;
  last_seq_.store(manifest.last_sequence);

  for (const auto& entry : manifest.components) {
    ComponentPtr comp;
    s = OpenComponent(entry.file_number, &comp, options_.use_bloom);
    if (!s.ok()) return s;
    if (options_.paranoid_checks) {
      uint64_t bad_offset = 0;
      s = comp->reader->VerifyAllBlocks(&bad_offset);
      if (!s.ok()) return s;
    }
    switch (entry.slot) {
      case Manifest::Slot::kC1:
        c1_ = comp;
        c1_data_bytes_.store(comp->reader->data_bytes());
        break;
      case Manifest::Slot::kC1Prime:
        c1_prime_ = comp;
        break;
      case Manifest::Slot::kC2:
        c2_ = comp;
        break;
    }
  }

  // Garbage from merges in flight at crash time: any .tree file the manifest
  // does not reference.
  std::vector<std::string> children;
  if (env_->GetChildren(dir_, &children).ok()) {
    for (const std::string& name : children) {
      if (name.size() > 5 && name.substr(name.size() - 5) == ".tree") {
        uint64_t num = strtoull(name.c_str(), nullptr, 10);
        bool referenced = false;
        for (const auto& entry : manifest.components) {
          if (entry.file_number == num) referenced = true;
        }
        if (!referenced && env_->RemoveFile(dir_ + "/" + name).ok()) {
          stats_.orphans_scavenged.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  // Recover recent writes from the logical log, then restart it with the
  // survivors so the new log is self-contained.
  std::string log_path = Manifest::LogFileName(dir_);
  uint64_t max_seq = last_seq_.load();
  s = LogicalLog::Replay(
      env_, log_path,
      [&](const Slice& key, SequenceNumber seq, RecordType type,
          const Slice& value) {
        mem_->Add(seq, type, key, value);
        max_seq = std::max(max_seq, seq);
      });
  if (!s.ok()) return s;
  last_seq_.store(max_seq);

  log_ = std::make_unique<LogicalLog>(env_, log_path, options_.durability);
  if (options_.durability != DurabilityMode::kNone) {
    s = log_->Restart([&](wal::LogWriter* w) -> Status {
      MemTable::Iterator it(mem_.get());
      std::string payload;
      for (it.SeekToFirst(); it.Valid(); it.Next()) {
        payload.clear();
        PutLengthPrefixedSlice(&payload, it.internal_key());
        PutLengthPrefixedSlice(&payload, it.value());
        Status ws = w->AddRecord(payload);
        if (!ws.ok()) return ws;
      }
      return Status::OK();
    });
    if (!s.ok()) return s;
  }

  merge1_thread_ = std::thread(&BlsmTree::Merge1Loop, this);
  merge2_thread_ = std::thread(&BlsmTree::Merge2Loop, this);
  return Status::OK();
}

Status BlsmTree::OpenComponent(uint64_t file_number, ComponentPtr* out,
                               bool with_bloom_expected) const {
  (void)with_bloom_expected;
  auto comp = std::make_shared<Component>();
  comp->env = env_;
  comp->file_number = file_number;
  comp->fname = Manifest::TreeFileName(dir_, file_number);
  Status s = sstree::TreeReader::Open(env_, cache_.get(), file_number,
                                      comp->fname, &comp->reader);
  if (!s.ok()) return s;
  *out = std::move(comp);
  return Status::OK();
}

BlsmTree::~BlsmTree() {
  shutdown_.store(true);
  work_cv_.notify_all();
  if (merge1_thread_.joinable()) merge1_thread_.join();
  if (merge2_thread_.joinable()) merge2_thread_.join();
  if (log_ != nullptr) log_->Close();
}

// --- snapshots / state --------------------------------------------------------

BlsmTree::Snapshot BlsmTree::GetSnapshot() const {
  std::lock_guard<std::mutex> l(mu_);
  Snapshot snap;
  snap.mem = mem_;
  snap.mem_old = mem_old_;
  snap.c1 = c1_;
  snap.c1_prime = c1_prime_;
  snap.c2 = c2_;
  return snap;
}

double BlsmTree::CurrentR() const {
  // Variable R (§2.3.1): with a three-level tree, R = sqrt(|data| / |C0|).
  uint64_t disk = 0;
  if (c1_ != nullptr) disk += c1_->reader->data_bytes();
  if (c1_prime_ != nullptr) disk += c1_prime_->reader->data_bytes();
  if (c2_ != nullptr) disk += c2_->reader->data_bytes();
  double r = std::sqrt(static_cast<double>(disk + options_.c0_target_bytes) /
                       static_cast<double>(options_.c0_target_bytes));
  return std::max(options_.min_r, r);
}

SchedulerState BlsmTree::ComputeSchedulerState() const {
  std::lock_guard<std::mutex> l(mu_);
  SchedulerState s;
  s.c0_live_bytes = mem_->LiveBytes();
  s.c0_target_bytes = options_.c0_target_bytes;
  s.merge1_active = progress1_.active.load(std::memory_order_relaxed);
  s.merge1_inprogress = progress1_.inprogress();
  s.merge2_active = progress2_.active.load(std::memory_order_relaxed);
  s.merge2_inprogress = progress2_.inprogress();
  s.c1_prime_exists = c1_prime_ != nullptr;

  // outprogress_1 (§4.1): how close C1 is to triggering the next hand-off,
  // counting completed C0-sized fills plus the current merge's inprogress.
  double r = CurrentR();
  double ceil_r = std::ceil(r);
  double fills = std::floor(
      static_cast<double>(c1_data_bytes_.load(std::memory_order_relaxed)) /
      static_cast<double>(options_.c0_target_bytes));
  fills = std::min(fills, ceil_r - 1.0);
  s.merge1_outprogress =
      std::min(1.0, (s.merge1_inprogress + fills) / ceil_r);
  return s;
}

uint64_t BlsmTree::OnDiskBytes() const {
  std::lock_guard<std::mutex> l(mu_);
  uint64_t total = 0;
  if (c1_ != nullptr) total += c1_->reader->data_bytes();
  if (c1_prime_ != nullptr) total += c1_prime_->reader->data_bytes();
  if (c2_ != nullptr) total += c2_->reader->data_bytes();
  return total;
}

uint64_t BlsmTree::C0LiveBytes() const {
  std::lock_guard<std::mutex> l(mu_);
  uint64_t total = mem_->LiveBytes();
  if (mem_old_ != nullptr) total += mem_old_->LiveBytes();
  return total;
}

Status BlsmTree::BackgroundError() const {
  std::lock_guard<std::mutex> l(mu_);
  return bg_error_;
}

void BlsmTree::RecordBackgroundError(const Status& s) {
  std::lock_guard<std::mutex> l(mu_);
  if (bg_error_.ok()) bg_error_ = s;
}

// --- writes ---------------------------------------------------------------

void BlsmTree::ApplyBackpressure() {
  constexpr uint64_t kBlockedPollUs = 500;
  uint64_t stalled = 0;
  // Hard stall: wait (re-polling) while the scheduler blocks writes — C0
  // full, or (gear) the writer has outrun merge 1.
  while (!shutdown_.load(std::memory_order_relaxed)) {
    {
      // If merges have latched an error they will never drain C0; the write
      // must escape the stall and report the error instead of hanging.
      std::lock_guard<std::mutex> l(mu_);
      if (!bg_error_.ok()) break;
    }
    SchedulerState state = ComputeSchedulerState();
    if (!scheduler_->WriteBlocked(state)) {
      // One-shot proportional delay (the spring, §4.3).
      uint64_t delay = scheduler_->WriteDelayMicros(state);
      if (delay > 0) {
        env_->SleepForMicroseconds(delay);
        stalled += delay;
      }
      break;
    }
    env_->SleepForMicroseconds(kBlockedPollUs);
    stalled += kBlockedPollUs;
    MaybeScheduleMerge1();
  }
  if (stalled > 0) {
    stats_.write_stall_micros.fetch_add(stalled, std::memory_order_relaxed);
  }
}

Status BlsmTree::WriteImpl(const Slice& key, RecordType type,
                           const Slice& value) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (!bg_error_.ok()) return bg_error_;
  }
  ApplyBackpressure();
  {
    // Re-check after the stall: the error may have latched while we waited.
    std::lock_guard<std::mutex> l(mu_);
    if (!bg_error_.ok()) return bg_error_;
  }

  std::shared_lock<std::shared_mutex> swap_guard(mem_swap_mu_);
  SequenceNumber seq = last_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (log_ != nullptr) {
    Status s = log_->Append(key, seq, type, value);
    if (!s.ok()) return s;
  }
  // mem_ is only replaced while mem_swap_mu_ is held exclusively, so the
  // shared lock makes this read stable.
  std::shared_ptr<MemTable> mem;
  {
    std::lock_guard<std::mutex> l(mu_);
    mem = mem_;
  }
  mem->Add(seq, type, key, value);
  swap_guard.unlock();

  MaybeScheduleMerge1();
  return Status::OK();
}

void BlsmTree::MaybeScheduleMerge1() {
  bool trigger;
  {
    std::lock_guard<std::mutex> l(mu_);
    uint64_t live = mem_->LiveBytes();
    if (options_.snowshovel) {
      trigger = live >= static_cast<uint64_t>(
                            options_.low_watermark *
                            static_cast<double>(options_.c0_target_bytes));
    } else {
      trigger = mem_old_ != nullptr || live >= options_.c0_target_bytes;
    }
  }
  if (trigger) work_cv_.notify_all();
}

Status BlsmTree::Put(const Slice& key, const Slice& value) {
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  return WriteImpl(key, RecordType::kBase, value);
}

Status BlsmTree::Delete(const Slice& key) {
  stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  return WriteImpl(key, RecordType::kTombstone, Slice());
}

Status BlsmTree::WriteDelta(const Slice& key, const Slice& delta) {
  stats_.deltas.fetch_add(1, std::memory_order_relaxed);
  return WriteImpl(key, RecordType::kDelta, delta);
}

Status BlsmTree::InsertIfNotExists(const Slice& key, const Slice& value) {
  stats_.insert_if_not_exists.fetch_add(1, std::memory_order_relaxed);
  Snapshot snap = GetSnapshot();
  bool exists = false;
  Status s = KeyExistsProbe(key, snap, &exists);
  if (!s.ok()) return s;
  if (exists) return Status::KeyExists(key);
  return WriteImpl(key, RecordType::kBase, value);
}

Status BlsmTree::KeyExistsProbe(const Slice& key, const Snapshot& snap,
                                bool* exists) {
  // The newest version decides: a base OR a delta means the key reads back
  // a value (deltas define one even over a tombstone or nothing, §2.3); a
  // tombstone means it does not. C0 (and C0') first: free.
  bool decided = false;
  auto probe_mem = [&](const std::shared_ptr<MemTable>& mem) {
    if (decided || mem == nullptr) return;
    mem->ForEachVersion(key, [&](RecordType t, const Slice&) {
      *exists = t != RecordType::kTombstone;
      decided = true;
      return false;
    });
  };
  probe_mem(snap.mem);
  probe_mem(snap.mem_old);
  if (decided) return Status::OK();

  // On-disk components: the Bloom filters prove absence with zero seeks
  // (§3.1.2); a positive filter requires one real lookup.
  const Component* comps[3] = {snap.c1.get(), snap.c1_prime.get(),
                               snap.c2.get()};
  for (const Component* comp : comps) {
    if (comp == nullptr) continue;
    bool use_bloom =
        options_.use_bloom &&
        (options_.bloom_on_largest || comp != snap.c2.get());
    if (use_bloom && !comp->reader->MayContain(key)) {
      stats_.bloom_skips.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Status io;
    auto rec = comp->reader->Get(key, use_bloom, &io);
    if (!io.ok()) return io;
    if (rec.has_value()) {
      if (rec->type == RecordType::kBase) {
        *exists = true;
        return Status::OK();
      }
      if (rec->type == RecordType::kTombstone) {
        *exists = false;
        return Status::OK();
      }
      // Delta: the key effectively has a value (deltas against a missing
      // base still produce one at read time).
      *exists = true;
      return Status::OK();
    }
  }
  *exists = false;
  return Status::OK();
}

// --- reads ----------------------------------------------------------------

Status BlsmTree::FinishLookup(const Slice& key, bool have_base,
                              const std::string& base,
                              std::vector<std::string>& deltas_newest_first,
                              std::string* value) const {
  if (!have_base && deltas_newest_first.empty()) return Status::NotFound(key);
  if (have_base && deltas_newest_first.empty()) {
    *value = base;
    return Status::OK();
  }
  std::vector<Slice> oldest_first;
  oldest_first.reserve(deltas_newest_first.size());
  for (auto it = deltas_newest_first.rbegin();
       it != deltas_newest_first.rend(); ++it) {
    oldest_first.emplace_back(*it);
  }
  Slice base_slice(base);
  if (!merge_op_->FullMerge(key, have_base ? &base_slice : nullptr,
                            oldest_first, value)) {
    return Status::Corruption("merge operator rejected operands");
  }
  return Status::OK();
}

Status BlsmTree::Get(const Slice& key, std::string* value) {
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  Snapshot snap = GetSnapshot();
  if (options_.early_read_termination) {
    return GetWithEarlyTermination(key, snap, value);
  }
  return GetExhaustive(key, snap, value);
}

Status BlsmTree::GetWithEarlyTermination(const Slice& key,
                                         const Snapshot& snap,
                                         std::string* value) {
  // §3.1.1: components are searched newest-first and the lookup stops at the
  // first base record or tombstone.
  std::vector<std::string> deltas;
  bool terminated = false;
  bool have_base = false;
  bool deleted = false;
  std::string base;

  auto search_mem = [&](const std::shared_ptr<MemTable>& mem) {
    if (terminated || mem == nullptr) return;
    mem->ForEachVersion(key, [&](RecordType t, const Slice& v) {
      switch (t) {
        case RecordType::kBase:
          base.assign(v.data(), v.size());
          have_base = true;
          terminated = true;
          break;
        case RecordType::kTombstone:
          deleted = true;
          terminated = true;
          break;
        case RecordType::kDelta:
          deltas.emplace_back(v.data(), v.size());
          break;
      }
      return !terminated;
    });
  };
  search_mem(snap.mem);
  search_mem(snap.mem_old);

  const Component* comps[3] = {snap.c1.get(), snap.c1_prime.get(),
                               snap.c2.get()};
  for (const Component* comp : comps) {
    if (terminated) break;
    if (comp == nullptr) continue;
    bool use_bloom =
        options_.use_bloom &&
        (options_.bloom_on_largest || comp != snap.c2.get());
    if (use_bloom && !comp->reader->MayContain(key)) {
      stats_.bloom_skips.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Status io;
    auto rec = comp->reader->Get(key, use_bloom, &io);
    if (!io.ok()) return io;
    if (!rec.has_value()) continue;
    switch (rec->type) {
      case RecordType::kBase:
        base = std::move(rec->value);
        have_base = true;
        terminated = true;
        break;
      case RecordType::kTombstone:
        deleted = true;
        terminated = true;
        break;
      case RecordType::kDelta:
        deltas.emplace_back(std::move(rec->value));
        break;
    }
  }

  (void)deleted;  // a tombstone simply means "no base below"
  return FinishLookup(key, have_base, base, deltas, value);
}

Status BlsmTree::GetExhaustive(const Slice& key, const Snapshot& snap,
                               std::string* value) {
  // Ablation for §3.1.1: visit every component unconditionally, collect all
  // versions, and reconstruct by sequence number. Models systems that assign
  // reads to components non-deterministically and cannot stop early.
  struct Version {
    SequenceNumber seq;
    RecordType type;
    std::string value;
  };
  std::vector<Version> versions;

  auto collect_mem = [&](const std::shared_ptr<MemTable>& mem) {
    if (mem == nullptr) return;
    // ForEachVersion already stops below a terminator, which is harmless
    // here: anything below it is shadowed in every reconstruction.
    SequenceNumber synth = kMaxSequenceNumber;
    mem->ForEachVersion(key, [&](RecordType t, const Slice& v) {
      versions.push_back(Version{synth--, t, std::string(v.data(), v.size())});
      return true;
    });
  };
  collect_mem(snap.mem);
  collect_mem(snap.mem_old);

  const Component* comps[3] = {snap.c1.get(), snap.c1_prime.get(),
                               snap.c2.get()};
  SequenceNumber disk_rank = kMaxSequenceNumber / 2;
  for (const Component* comp : comps) {
    if (comp == nullptr) continue;
    Status io;
    auto rec = comp->reader->Get(key, /*use_bloom=*/false, &io);
    if (!io.ok()) return io;
    if (rec.has_value()) {
      versions.push_back(Version{disk_rank, rec->type, std::move(rec->value)});
    }
    disk_rank--;  // freshness ordering across components
  }

  std::stable_sort(versions.begin(), versions.end(),
                   [](const Version& a, const Version& b) {
                     return a.seq > b.seq;
                   });

  std::vector<std::string> deltas;
  bool have_base = false;
  std::string base;
  for (const Version& v : versions) {
    if (v.type == RecordType::kBase) {
      base = v.value;
      have_base = true;
      break;
    }
    if (v.type == RecordType::kTombstone) break;
    deltas.push_back(v.value);
  }
  return FinishLookup(key, have_base, base, deltas, value);
}

std::vector<Status> BlsmTree::MultiGet(const std::vector<Slice>& keys,
                                       std::vector<std::string>* values) {
  stats_.gets.fetch_add(keys.size(), std::memory_order_relaxed);
  Snapshot snap = GetSnapshot();  // one snapshot: a consistent point
  values->assign(keys.size(), std::string());
  std::vector<Status> statuses;
  statuses.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); i++) {
    statuses.push_back(
        options_.early_read_termination
            ? GetWithEarlyTermination(keys[i], snap, &(*values)[i])
            : GetExhaustive(keys[i], snap, &(*values)[i]));
  }
  return statuses;
}

Status BlsmTree::ReadModifyWrite(
    const Slice& key,
    const std::function<std::string(const std::string& old, bool absent)>&
        update) {
  std::string old;
  Status s = Get(key, &old);
  bool absent = s.IsNotFound();
  if (!s.ok() && !absent) return s;
  return Put(key, update(old, absent));
}

// --- scans ------------------------------------------------------------------

std::unique_ptr<ScanIterator> BlsmTree::NewScanIterator() {
  Snapshot snap = GetSnapshot();
  std::vector<std::unique_ptr<InternalIterator>> children;
  std::vector<std::shared_ptr<void>> pins;
  children.push_back(NewMemTableIterator(snap.mem));
  if (snap.mem_old != nullptr) {
    children.push_back(NewMemTableIterator(snap.mem_old));
  }
  for (const ComponentPtr& comp : {snap.c1, snap.c1_prime, snap.c2}) {
    if (comp == nullptr) continue;
    children.push_back(
        NewTreeComponentIterator(comp->reader.get(), /*sequential=*/false));
    pins.push_back(comp);
  }
  auto merged = std::make_unique<MergingIterator>(std::move(children));
  return std::unique_ptr<ScanIterator>(
      new ScanIterator(std::move(merged), merge_op_, std::move(pins)));
}

Status BlsmTree::Scan(const Slice& start, size_t limit,
                      std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  auto it = NewScanIterator();
  for (it->Seek(start); it->Valid() && out->size() < limit; it->Next()) {
    out->emplace_back(it->key().ToString(), it->value().ToString());
  }
  return it->status();
}

ScanIterator::ScanIterator(std::unique_ptr<InternalIterator> iter,
                           std::shared_ptr<const MergeOperator> merge_op,
                           std::vector<std::shared_ptr<void>> pins)
    : iter_(std::move(iter)),
      merge_op_(std::move(merge_op)),
      pins_(std::move(pins)) {}

void ScanIterator::SeekToFirst() {
  iter_->SeekToFirst();
  CollapseCurrent();
}

void ScanIterator::Seek(const Slice& user_key) {
  iter_->Seek(InternalLookupKey(user_key));
  CollapseCurrent();
}

void ScanIterator::Next() { CollapseCurrent(); }

void ScanIterator::CollapseCurrent() {
  // The underlying iterator is positioned at the first unprocessed version.
  valid_ = false;
  while (iter_->Valid()) {
    // A child iterator that died on an I/O or checksum error reports
    // through status(); stopping silently here would truncate the scan.
    if (!iter_->status().ok()) {
      status_ = iter_->status();
      return;
    }
    ParsedInternalKey first;
    if (!ParseInternalKey(iter_->key(), &first)) {
      status_ = Status::Corruption("bad internal key in scan");
      return;
    }
    key_.assign(first.user_key.data(), first.user_key.size());

    bool have_base = false;
    bool have_tombstone = false;
    std::string base;
    std::vector<std::string> deltas_newest_first;

    while (iter_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(iter_->key(), &parsed)) {
        status_ = Status::Corruption("bad internal key in scan");
        return;
      }
      if (parsed.user_key != Slice(key_)) break;
      if (!have_base && !have_tombstone) {
        switch (parsed.type) {
          case RecordType::kBase:
            base.assign(iter_->value().data(), iter_->value().size());
            have_base = true;
            break;
          case RecordType::kTombstone:
            have_tombstone = true;
            break;
          case RecordType::kDelta:
            deltas_newest_first.emplace_back(iter_->value().data(),
                                             iter_->value().size());
            break;
        }
      }
      iter_->Next();
    }

    if (!have_base && deltas_newest_first.empty()) {
      continue;  // deleted key (or empty group): skip to the next user key
    }
    std::vector<Slice> oldest_first;
    for (auto rit = deltas_newest_first.rbegin();
         rit != deltas_newest_first.rend(); ++rit) {
      oldest_first.emplace_back(*rit);
    }
    if (oldest_first.empty()) {
      value_ = std::move(base);
    } else {
      Slice base_slice(base);
      if (!merge_op_->FullMerge(key_, have_base ? &base_slice : nullptr,
                                oldest_first, &value_)) {
        status_ = Status::Corruption("merge operator rejected operands");
        return;
      }
    }
    valid_ = true;
    return;
  }
  // Exhausted — distinguish a clean end from a child that died on an error
  // (e.g. a corrupt block): the scan must not look merely shorter.
  if (status_.ok()) status_ = iter_->status();
}

// --- merges -----------------------------------------------------------------

void BlsmTree::BackoffWait(int attempt) {
  uint64_t wait = options_.retry_backoff_base_micros;
  for (int i = 0; i < attempt && wait < options_.retry_backoff_max_micros;
       i++) {
    wait <<= 1;
  }
  wait = std::min(wait, options_.retry_backoff_max_micros);
  // Sleep in small slices so shutdown interrupts the backoff promptly.
  constexpr uint64_t kSliceUs = 1000;
  while (wait > 0 && !shutdown_.load(std::memory_order_relaxed)) {
    uint64_t slice = std::min(wait, kSliceUs);
    env_->SleepForMicroseconds(slice);
    wait -= slice;
  }
}

Status BlsmTree::RunPassWithRetry(const std::function<Status()>& pass) {
  // Transient failures (a flaky device, a full queue) are retried with
  // capped exponential backoff instead of poisoning the tree forever; if the
  // device heals mid-backoff the merge resumes without a reopen. Permanent
  // errors and an exhausted budget fall through to the caller, which latches
  // bg_error_.
  Status s = pass();
  int attempt = 0;
  while (!s.ok() && s.IsTransient() &&
         !shutdown_.load(std::memory_order_relaxed) &&
         attempt < options_.max_background_retries) {
    stats_.merge_retries.fetch_add(1, std::memory_order_relaxed);
    BackoffWait(attempt++);
    if (shutdown_.load(std::memory_order_relaxed)) break;
    s = pass();
  }
  return s;
}

bool BlsmTree::MergePauseWait(int which) {
  while (!shutdown_.load(std::memory_order_relaxed)) {
    if (force_promote_.load(std::memory_order_relaxed) ||
        pacing_override_.load(std::memory_order_relaxed) > 0) {
      return true;  // foreground compaction / drain override
    }
    SchedulerState state = ComputeSchedulerState();
    bool paused = (which == 1) ? scheduler_->PauseMerge1(state)
                               : scheduler_->PauseMerge2(state);
    if (!paused) return true;
    env_->SleepForMicroseconds(kMergePausePollUs);
  }
  return false;
}

void BlsmTree::Merge1Loop() {
  std::unique_lock<std::mutex> l(mu_);
  while (!shutdown_.load()) {
    uint64_t live = mem_->LiveBytes();
    bool trigger;
    if (options_.snowshovel) {
      trigger = merge1_requested_ ||
                live >= static_cast<uint64_t>(
                            options_.low_watermark *
                            static_cast<double>(options_.c0_target_bytes));
    } else {
      trigger = merge1_requested_ || mem_old_ != nullptr ||
                live >= options_.c0_target_bytes;
    }
    if (!trigger) {
      work_cv_.wait_for(l, std::chrono::milliseconds(20));
      continue;
    }

    // Non-snowshovel modes partition C0: freeze the current memtable as C0'
    // and open a fresh C0 for incoming writes (§4.2.1).
    if (!options_.snowshovel && mem_old_ == nullptr) {
      l.unlock();
      {
        std::unique_lock<std::shared_mutex> swap(mem_swap_mu_);
        std::lock_guard<std::mutex> relock(mu_);
        mem_old_ = mem_;
        mem_ = std::make_shared<MemTable>();
      }
      l.lock();
    }

    merge1_running_ = true;
    merge1_requested_ = false;
    l.unlock();
    Status s = RunPassWithRetry([this] { return RunMerge1Pass(); });
    l.lock();
    merge1_running_ = false;
    if (!s.ok() && !shutdown_.load()) bg_error_ = s;
    stats_.merge1_passes.fetch_add(1, std::memory_order_relaxed);
    idle_cv_.notify_all();
  }
}

Status BlsmTree::RunMerge1Pass() {
  std::shared_ptr<MemTable> input_mem;
  ComponentPtr old_c1;
  {
    std::lock_guard<std::mutex> l(mu_);
    input_mem = options_.snowshovel ? mem_ : mem_old_;
    old_c1 = c1_;
  }
  if (input_mem == nullptr) return Status::OK();

  uint64_t input_total = input_mem->LiveBytes() +
                         (old_c1 != nullptr ? old_c1->reader->data_bytes() : 0);
  if (input_total == 0) {
    // Nothing to do; clear C0' so the loop does not spin.
    std::lock_guard<std::mutex> l(mu_);
    if (!options_.snowshovel) mem_old_.reset();
    return Status::OK();
  }
  progress1_.bytes_read.store(0);
  progress1_.input_total.store(input_total);
  progress1_.active.store(true);

  uint64_t file_number;
  {
    std::lock_guard<std::mutex> l(mu_);
    file_number = next_file_number_++;
  }
  std::string fname = Manifest::TreeFileName(dir_, file_number);
  sstree::TreeBuilderOptions bopts;
  bopts.block_size = options_.block_size;
  bopts.bloom_bits_per_key = options_.bloom_bits_per_key;
  bopts.build_bloom = options_.use_bloom;
  sstree::TreeBuilder builder(env_, fname, bopts);
  Status s = builder.Open();
  if (!s.ok()) {
    progress1_.active.store(false);
    return s;
  }

  std::vector<std::unique_ptr<InternalIterator>> children;
  children.push_back(NewMemTableIterator(input_mem));
  if (old_c1 != nullptr) {
    children.push_back(
        NewTreeComponentIterator(old_c1->reader.get(), /*sequential=*/true));
  }
  MergingIterator merged(std::move(children));
  merged.SeekToFirst();

  uint64_t consumed = 0;
  size_t since_check = 0;
  std::string out_ikey;
  while (merged.Valid()) {
    GroupResult group;
    s = CollapseGroup(&merged, merge_op_.get(), /*bottom=*/false, &consumed,
                      &group);
    if (!s.ok()) break;
    progress1_.bytes_read.store(std::min(consumed, input_total));
    if (group.emit) {
      out_ikey.clear();
      AppendInternalKey(&out_ikey, group.user_key, group.seq, group.type);
      s = builder.Add(out_ikey, group.value);
      if (!s.ok()) break;
    }
    if (++since_check >= options_.merge_batch_entries) {
      since_check = 0;
      if (!MergePauseWait(1)) {  // shutdown
        builder.Abandon();
        env_->RemoveFile(fname);
        progress1_.active.store(false);
        return Status::OK();
      }
    }
  }
  if (s.ok()) s = merged.status();
  if (!s.ok()) {
    builder.Abandon();
    env_->RemoveFile(fname);
    progress1_.active.store(false);
    return s;
  }

  s = builder.Finish();
  if (!s.ok()) {
    env_->RemoveFile(fname);
    progress1_.active.store(false);
    return s;
  }
  stats_.merge1_bytes_out.fetch_add(builder.file_size(),
                                    std::memory_order_relaxed);

  ComponentPtr fresh;
  s = OpenComponent(file_number, &fresh, options_.use_bloom);
  if (!s.ok()) {
    env_->RemoveFile(fname);
    progress1_.active.store(false);
    return s;
  }

  // Install, then decide the hand-off (promotion of C1 to C1'). The
  // manifest write (an fsync) happens after mu_ is released; the replaced
  // component is unlinked only once the new manifest is durable.
  Manifest manifest;
  uint64_t manifest_version;
  {
    std::lock_guard<std::mutex> l(mu_);
    c1_ = fresh;
    c1_data_bytes_.store(fresh->reader->data_bytes());
    if (!options_.snowshovel) mem_old_.reset();

    double r = CurrentR();
    bool promote =
        c1_prime_ == nullptr &&
        (force_promote_.load() ||
         c1_data_bytes_.load() >=
             static_cast<uint64_t>(
                 r * static_cast<double>(options_.c0_target_bytes)));
    if (promote) {
      c1_prime_ = c1_;
      c1_.reset();
      c1_data_bytes_.store(0);
      force_promote_.store(false);
    }
    manifest = BuildManifestLocked(&manifest_version);
  }
  s = SaveManifest(manifest, manifest_version);
  if (!s.ok()) {
    progress1_.active.store(false);
    return s;
  }
  if (old_c1 != nullptr) old_c1->obsolete.store(true);
  work_cv_.notify_all();  // wake merge2 if we promoted

  // Snowshovel: drop the consumed entries and reclaim arena memory, then
  // truncate the log to the survivors.
  //
  // In kSync mode the writer exclusion must span the log restart too: a
  // write whose old-log record is discarded by the truncation must be
  // guaranteed to appear in the relogged survivor set. In kAsync mode the
  // durability contract already tolerates losing an unsynced tail, so
  // writers are excluded only for the (short) memtable swap and the fsync-
  // bearing restart happens with writes flowing.
  {
    std::unique_lock<std::shared_mutex> swap(mem_swap_mu_);
    std::shared_ptr<MemTable> survivors;
    if (options_.snowshovel) {
      survivors = input_mem->CompactUnconsumed();
      std::lock_guard<std::mutex> l(mu_);
      mem_ = survivors;
    } else {
      std::lock_guard<std::mutex> l(mu_);
      survivors = mem_;
    }
    if (options_.durability == DurabilityMode::kSync) {
      s = TruncateLog(survivors);
    } else {
      swap.unlock();
      s = TruncateLog(survivors);
    }
  }
  progress1_.active.store(false);
  return s;
}

Status BlsmTree::TruncateLog(const std::shared_ptr<MemTable>& survivors) {
  if (log_ == nullptr || log_->mode() == DurabilityMode::kNone) {
    return Status::OK();
  }
  return log_->Restart([&](wal::LogWriter* w) -> Status {
    MemTable::Iterator it(survivors.get());
    std::string payload;
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      payload.clear();
      PutLengthPrefixedSlice(&payload, it.internal_key());
      PutLengthPrefixedSlice(&payload, it.value());
      Status s = w->AddRecord(payload);
      if (!s.ok()) return s;
    }
    return Status::OK();
  });
}

void BlsmTree::Merge2Loop() {
  std::unique_lock<std::mutex> l(mu_);
  while (!shutdown_.load()) {
    if (c1_prime_ == nullptr) {
      work_cv_.wait_for(l, std::chrono::milliseconds(20));
      continue;
    }
    merge2_running_ = true;
    l.unlock();
    Status s = RunPassWithRetry([this] { return RunMerge2Pass(); });
    l.lock();
    merge2_running_ = false;
    if (!s.ok() && !shutdown_.load()) bg_error_ = s;
    stats_.merge2_passes.fetch_add(1, std::memory_order_relaxed);
    idle_cv_.notify_all();
  }
}

Status BlsmTree::RunMerge2Pass() {
  ComponentPtr input_c1p, old_c2;
  {
    std::lock_guard<std::mutex> l(mu_);
    input_c1p = c1_prime_;
    old_c2 = c2_;
  }
  if (input_c1p == nullptr) return Status::OK();

  uint64_t input_total = input_c1p->reader->data_bytes() +
                         (old_c2 != nullptr ? old_c2->reader->data_bytes() : 0);
  progress2_.bytes_read.store(0);
  progress2_.input_total.store(std::max<uint64_t>(input_total, 1));
  progress2_.active.store(true);

  uint64_t file_number;
  {
    std::lock_guard<std::mutex> l(mu_);
    file_number = next_file_number_++;
  }
  std::string fname = Manifest::TreeFileName(dir_, file_number);
  sstree::TreeBuilderOptions bopts;
  bopts.block_size = options_.block_size;
  bopts.bloom_bits_per_key = options_.bloom_bits_per_key;
  // §3.1.2: the largest component's filter is what makes "insert if not
  // exists" seek-free; bloom_on_largest=false is the ablation.
  bopts.build_bloom = options_.use_bloom && options_.bloom_on_largest;
  sstree::TreeBuilder builder(env_, fname, bopts);
  Status s = builder.Open();
  if (!s.ok()) {
    progress2_.active.store(false);
    return s;
  }

  std::vector<std::unique_ptr<InternalIterator>> children;
  children.push_back(
      NewTreeComponentIterator(input_c1p->reader.get(), /*sequential=*/true));
  if (old_c2 != nullptr) {
    children.push_back(
        NewTreeComponentIterator(old_c2->reader.get(), /*sequential=*/true));
  }
  MergingIterator merged(std::move(children));
  merged.SeekToFirst();

  uint64_t consumed = 0;
  size_t since_check = 0;
  std::string out_ikey;
  while (merged.Valid()) {
    GroupResult group;
    s = CollapseGroup(&merged, merge_op_.get(), /*bottom=*/true, &consumed,
                      &group);
    if (!s.ok()) break;
    progress2_.bytes_read.store(
        std::min(consumed, progress2_.input_total.load()));
    if (group.emit) {
      out_ikey.clear();
      AppendInternalKey(&out_ikey, group.user_key, group.seq, group.type);
      s = builder.Add(out_ikey, group.value);
      if (!s.ok()) break;
    }
    if (++since_check >= options_.merge_batch_entries) {
      since_check = 0;
      if (!MergePauseWait(2)) {
        builder.Abandon();
        env_->RemoveFile(fname);
        progress2_.active.store(false);
        return Status::OK();
      }
    }
  }
  if (s.ok()) s = merged.status();
  if (!s.ok()) {
    builder.Abandon();
    env_->RemoveFile(fname);
    progress2_.active.store(false);
    return s;
  }

  s = builder.Finish();
  if (!s.ok()) {
    env_->RemoveFile(fname);
    progress2_.active.store(false);
    return s;
  }
  stats_.merge2_bytes_out.fetch_add(builder.file_size(),
                                    std::memory_order_relaxed);

  ComponentPtr fresh;
  s = OpenComponent(file_number, &fresh, options_.use_bloom);
  if (!s.ok()) {
    env_->RemoveFile(fname);
    progress2_.active.store(false);
    return s;
  }

  Manifest manifest;
  uint64_t manifest_version;
  {
    std::lock_guard<std::mutex> l(mu_);
    c2_ = fresh;
    c1_prime_.reset();
    manifest = BuildManifestLocked(&manifest_version);
  }
  s = SaveManifest(manifest, manifest_version);
  if (!s.ok()) {
    progress2_.active.store(false);
    return s;
  }
  // Inputs become garbage only after the manifest that drops them is
  // durable (a crash in between must still find them referenced).
  if (old_c2 != nullptr) old_c2->obsolete.store(true);
  input_c1p->obsolete.store(true);
  progress2_.active.store(false);
  work_cv_.notify_all();
  return Status::OK();
}

Manifest BlsmTree::BuildManifestLocked(uint64_t* version) {
  Manifest manifest;
  manifest.next_file_number = next_file_number_;
  manifest.last_sequence = last_seq_.load();
  if (c1_ != nullptr) {
    manifest.components.push_back(
        {Manifest::Slot::kC1, c1_->file_number});
  }
  if (c1_prime_ != nullptr) {
    manifest.components.push_back(
        {Manifest::Slot::kC1Prime, c1_prime_->file_number});
  }
  if (c2_ != nullptr) {
    manifest.components.push_back(
        {Manifest::Slot::kC2, c2_->file_number});
  }
  *version = ++manifest_build_version_;
  return manifest;
}

Status BlsmTree::SaveManifest(const Manifest& manifest, uint64_t version) {
  std::lock_guard<std::mutex> l(manifest_io_mu_);
  if (version <= manifest_written_version_) {
    // A newer snapshot has already been written (the other merge thread
    // installed after us but reached the file first).
    return Status::OK();
  }
  Status s = manifest.Save(env_, dir_);
  if (s.ok()) manifest_written_version_ = version;
  return s;
}

// --- maintenance entry points -------------------------------------------------

Status BlsmTree::Flush() {
  pacing_override_.fetch_add(1);
  uint64_t target;
  {
    std::unique_lock<std::mutex> l(mu_);
    if (!bg_error_.ok()) {
      pacing_override_.fetch_sub(1);
      return bg_error_;
    }
    merge1_requested_ = true;
    // A pass already in flight snapshotted its inputs before this request;
    // only a pass that starts afterwards is guaranteed to cover everything.
    target = stats_.merge1_passes.load() + (merge1_running_ ? 2 : 1);
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> l(mu_);
  while (!(shutdown_.load() || !bg_error_.ok() ||
           stats_.merge1_passes.load() >= target)) {
    work_cv_.notify_all();
    idle_cv_.wait_for(l, std::chrono::milliseconds(20));
  }
  pacing_override_.fetch_sub(1);
  return bg_error_;
}

Status BlsmTree::CompactToBottom() {
  Status s = Flush();
  if (!s.ok()) return s;
  force_promote_.store(true);
  // A second pass performs the promotion (it may have no data to merge).
  s = Flush();
  if (!s.ok()) {
    force_promote_.store(false);
    return s;
  }
  // Wait for merge2 to drain C1'.
  pacing_override_.fetch_add(1);
  std::unique_lock<std::mutex> l(mu_);
  while (!(shutdown_.load() || !bg_error_.ok() ||
           (c1_prime_ == nullptr && !merge2_running_))) {
    work_cv_.notify_all();
    idle_cv_.wait_for(l, std::chrono::milliseconds(20));
  }
  force_promote_.store(false);
  pacing_override_.fetch_sub(1);
  return bg_error_;
}

void BlsmTree::WaitForMergeIdle() {
  // Drain at full speed: pacing is meant to shape concurrent workloads, not
  // to make an idle wait last forever.
  pacing_override_.fetch_add(1);
  std::unique_lock<std::mutex> l(mu_);
  while (true) {
    bool done = [&] {
      if (shutdown_.load() || !bg_error_.ok()) return true;
      if (merge1_running_ || merge2_running_) return false;
      uint64_t live = mem_->LiveBytes();
      bool pending1 =
          options_.snowshovel
              ? live >= static_cast<uint64_t>(
                            options_.low_watermark *
                            static_cast<double>(options_.c0_target_bytes))
              : (mem_old_ != nullptr || live >= options_.c0_target_bytes);
      return !pending1 && c1_prime_ == nullptr;
    }();
    if (done) break;
    work_cv_.notify_all();
    idle_cv_.wait_for(l, std::chrono::milliseconds(20));
  }
  pacing_override_.fetch_sub(1);
}

}  // namespace blsm
