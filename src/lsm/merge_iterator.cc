#include "lsm/merge_iterator.h"

namespace blsm {

namespace {

class MemTableInternalIterator final : public InternalIterator {
 public:
  explicit MemTableInternalIterator(std::shared_ptr<MemTable> mem)
      : mem_(std::move(mem)), it_(mem_.get()) {}

  bool Valid() const override { return it_.Valid(); }
  void SeekToFirst() override { it_.SeekToFirst(); }
  void Seek(const Slice& ikey) override { it_.Seek(ikey); }
  void Next() override { it_.Next(); }
  Slice key() const override { return it_.internal_key(); }
  Slice value() const override { return it_.value(); }

  void MarkConsumed() override {
    it_.MarkConsumed();
    mem_->NoteConsumed(it_.entry_bytes());
  }

 private:
  std::shared_ptr<MemTable> mem_;
  MemTable::Iterator it_;
};

class TreeInternalIterator final : public InternalIterator {
 public:
  TreeInternalIterator(const sstree::TreeReader* tree, bool sequential,
                       uint64_t scan_readahead_bytes)
      : it_(tree->NewIterator(sequential, scan_readahead_bytes)) {}

  bool Valid() const override { return it_->Valid(); }
  void SeekToFirst() override { it_->SeekToFirst(); }
  void Seek(const Slice& ikey) override { it_->Seek(ikey); }
  void Next() override { it_->Next(); }
  Slice key() const override { return it_->key(); }
  Slice value() const override { return it_->value(); }
  Status status() const override { return it_->status(); }

 private:
  std::unique_ptr<sstree::TreeIterator> it_;
};

}  // namespace

std::unique_ptr<InternalIterator> NewMemTableIterator(
    std::shared_ptr<MemTable> mem) {
  return std::make_unique<MemTableInternalIterator>(std::move(mem));
}

std::unique_ptr<InternalIterator> NewTreeComponentIterator(
    const sstree::TreeReader* tree, bool sequential,
    uint64_t scan_readahead_bytes) {
  return std::make_unique<TreeInternalIterator>(tree, sequential,
                                                scan_readahead_bytes);
}

void MergingIterator::SeekToFirst() {
  for (auto& child : children_) child->SeekToFirst();
  FindSmallest();
}

void MergingIterator::Seek(const Slice& ikey) {
  for (auto& child : children_) child->Seek(ikey);
  FindSmallest();
}

void MergingIterator::Next() {
  current_->Next();
  FindSmallest();
}

void MergingIterator::FindSmallest() {
  InternalIterator* smallest = nullptr;
  for (auto& child : children_) {
    if (!child->Valid()) continue;
    if (smallest == nullptr ||
        CompareInternalKey(child->key(), smallest->key()) < 0) {
      smallest = child.get();
    }
  }
  current_ = smallest;
}

Status MergingIterator::status() const {
  for (const auto& child : children_) {
    Status s = child->status();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace blsm
