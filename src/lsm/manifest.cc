#include "lsm/manifest.h"

#include <cinttypes>
#include <cstdio>

#include "util/coding.h"
#include "util/crc32c.h"

namespace blsm {

namespace {
constexpr uint32_t kManifestMagic = 0xb15a11feu;
constexpr uint32_t kFormatVersion = 1;
}  // namespace

void Manifest::EncodeTo(std::string* dst) const {
  std::string body;
  PutFixed32(&body, kManifestMagic);
  PutFixed32(&body, kFormatVersion);
  PutVarint64(&body, next_file_number);
  PutVarint64(&body, last_sequence);
  PutVarint32(&body, static_cast<uint32_t>(components.size()));
  for (const auto& c : components) {
    body.push_back(static_cast<char>(c.slot));
    PutVarint64(&body, c.file_number);
  }
  PutFixed32(&body, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  *dst = std::move(body);
}

Status Manifest::DecodeFrom(const Slice& data) {
  if (data.size() < 12) return Status::Corruption("manifest too short");
  Slice body(data.data(), data.size() - 4);
  uint32_t stored = crc32c::Unmask(DecodeFixed32(data.data() + body.size()));
  if (stored != crc32c::Value(body.data(), body.size())) {
    return Status::Corruption("manifest checksum mismatch");
  }
  uint32_t magic, version, count;
  if (!GetFixed32(&body, &magic) || magic != kManifestMagic) {
    return Status::Corruption("bad manifest magic");
  }
  if (!GetFixed32(&body, &version) || version != kFormatVersion) {
    return Status::Corruption("unsupported manifest version");
  }
  if (!GetVarint64(&body, &next_file_number) ||
      !GetVarint64(&body, &last_sequence) || !GetVarint32(&body, &count)) {
    return Status::Corruption("truncated manifest");
  }
  components.clear();
  for (uint32_t i = 0; i < count; i++) {
    if (body.empty()) return Status::Corruption("truncated component list");
    auto slot = static_cast<Slot>(body[0]);
    body.remove_prefix(1);
    if (slot != Slot::kC1 && slot != Slot::kC1Prime && slot != Slot::kC2) {
      return Status::Corruption("bad component slot");
    }
    uint64_t file_number;
    if (!GetVarint64(&body, &file_number)) {
      return Status::Corruption("truncated component entry");
    }
    components.push_back(ComponentEntry{slot, file_number});
  }
  return Status::OK();
}

Status Manifest::Save(Env* env, const std::string& dir) const {
  std::string encoded;
  EncodeTo(&encoded);
  std::string tmp = dir + "/MANIFEST.tmp";
  Status s = WriteStringToFile(env, encoded, tmp, /*sync=*/true);
  if (!s.ok()) return s;
  return env->RenameFile(tmp, FileName(dir));
}

Status Manifest::Load(Env* env, const std::string& dir, Manifest* out) {
  std::string data;
  Status s = ReadFileToString(env, FileName(dir), &data);
  if (!s.ok()) return s;
  return out->DecodeFrom(data);
}

std::string Manifest::FileName(const std::string& dir) {
  return dir + "/MANIFEST";
}

std::string Manifest::TreeFileName(const std::string& dir,
                                   uint64_t file_number) {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%06" PRIu64 ".tree", file_number);
  return dir + buf;
}

std::string Manifest::LogFileName(const std::string& dir) {
  return dir + "/wal.log";
}

}  // namespace blsm
