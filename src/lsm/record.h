#ifndef BLSM_LSM_RECORD_H_
#define BLSM_LSM_RECORD_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"

namespace blsm {

// Record taxonomy from §3.1.1: reads distinguish base records from deltas so
// they can stop at the first base record ("early termination"), and
// tombstones so deletes shadow older versions until they reach the bottom
// component.
enum class RecordType : uint8_t {
  kTombstone = 0,  // deletion marker
  kDelta = 1,      // partial update, interpreted by the MergeOperator
  kBase = 2,       // complete value
};

// A sequence number orders all writes in the system. Write ordering across
// tree levels is consistent with seqno order (§3.1.1), which is what makes
// early read termination safe.
using SequenceNumber = uint64_t;
constexpr SequenceNumber kMaxSequenceNumber = (uint64_t{1} << 56) - 1;

// An internal key is user_key + 8-byte trailer ((seqno << 8) | type).
// Internal keys sort by (user_key ascending, seqno descending), so the
// newest version of a key is encountered first by forward iteration.
inline uint64_t PackSeqAndType(SequenceNumber seq, RecordType t) {
  return (seq << 8) | static_cast<uint8_t>(t);
}

inline SequenceNumber UnpackSeq(uint64_t packed) { return packed >> 8; }
inline RecordType UnpackType(uint64_t packed) {
  return static_cast<RecordType>(packed & 0xff);
}

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber seq = 0;
  RecordType type = RecordType::kBase;
};

inline void AppendInternalKey(std::string* dst, const Slice& user_key,
                              SequenceNumber seq, RecordType t) {
  dst->append(user_key.data(), user_key.size());
  PutFixed64(dst, PackSeqAndType(seq, t));
}

inline bool ParseInternalKey(const Slice& ikey, ParsedInternalKey* out) {
  if (ikey.size() < 8) return false;
  uint64_t packed = DecodeFixed64(ikey.data() + ikey.size() - 8);
  out->user_key = Slice(ikey.data(), ikey.size() - 8);
  out->seq = UnpackSeq(packed);
  out->type = UnpackType(packed);
  return out->type <= RecordType::kBase;
}

inline Slice ExtractUserKey(const Slice& ikey) {
  return Slice(ikey.data(), ikey.size() - 8);
}

// (user_key asc, seq desc, type desc): newest version first.
inline int CompareInternalKey(const Slice& a, const Slice& b) {
  Slice ua = ExtractUserKey(a);
  Slice ub = ExtractUserKey(b);
  int r = ua.compare(ub);
  if (r != 0) return r;
  uint64_t pa = DecodeFixed64(a.data() + a.size() - 8);
  uint64_t pb = DecodeFixed64(b.data() + b.size() - 8);
  // Higher (seq, type) sorts first: newest version wins ties.
  if (pa > pb) return -1;
  if (pa < pb) return +1;
  return 0;
}

// An internal key that sorts at the newest possible version of `user_key`,
// i.e. before every stored version. Used as a Seek target for point lookups.
inline std::string InternalLookupKey(const Slice& user_key) {
  std::string k;
  AppendInternalKey(&k, user_key, kMaxSequenceNumber, RecordType::kBase);
  return k;
}

// Flat encoding of one record, used by the memtable and the WAL:
//   varint32 ikey_len | ikey | varint32 value_len | value
inline void EncodeRecord(std::string* dst, const Slice& user_key,
                         SequenceNumber seq, RecordType t, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(user_key.size() + 8));
  AppendInternalKey(dst, user_key, seq, t);
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

struct DecodedRecord {
  Slice internal_key;
  Slice value;
};

// Parses a record at the front of *input, advancing it. Returns false on
// malformed input.
inline bool DecodeRecord(Slice* input, DecodedRecord* rec) {
  if (!GetLengthPrefixedSlice(input, &rec->internal_key)) return false;
  if (rec->internal_key.size() < 8) return false;
  return GetLengthPrefixedSlice(input, &rec->value);
}

}  // namespace blsm

#endif  // BLSM_LSM_RECORD_H_
