#include "lsm/record.h"

namespace blsm {

// All record helpers are inline in record.h so that lower-level libraries
// (memtable, sstree) can use them without linking against the core library.

}  // namespace blsm
