#include "lsm/collapse.h"

#include <vector>

namespace blsm {

Status CollapseGroup(InternalIterator* it, const MergeOperator* op,
                     bool bottom, uint64_t* bytes_consumed, GroupResult* out) {
  ParsedInternalKey first;
  if (!ParseInternalKey(it->key(), &first)) {
    return Status::Corruption("bad internal key in merge input");
  }
  out->user_key.assign(first.user_key.data(), first.user_key.size());
  out->seq = first.seq;

  bool have_base = false;
  bool have_tombstone = false;
  std::string base;
  std::vector<std::string> deltas_newest_first;

  while (it->Valid()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(it->key(), &parsed)) {
      return Status::Corruption("bad internal key in merge input");
    }
    if (parsed.user_key != Slice(out->user_key)) break;

    *bytes_consumed += it->key().size() + it->value().size() + 8;
    if (!have_base && !have_tombstone) {
      switch (parsed.type) {
        case RecordType::kBase:
          base.assign(it->value().data(), it->value().size());
          have_base = true;
          break;
        case RecordType::kTombstone:
          have_tombstone = true;
          break;
        case RecordType::kDelta:
          deltas_newest_first.emplace_back(it->value().data(),
                                           it->value().size());
          break;
      }
    }
    // Versions older than the first base/tombstone are shadowed: reads can
    // never observe them (§3.1.1), so the merge drops them.
    it->MarkConsumed();
    it->Next();
  }

  std::vector<Slice> deltas_oldest_first;
  deltas_oldest_first.reserve(deltas_newest_first.size());
  for (auto rit = deltas_newest_first.rbegin();
       rit != deltas_newest_first.rend(); ++rit) {
    deltas_oldest_first.emplace_back(*rit);
  }

  if (have_base) {
    out->emit = true;
    out->type = RecordType::kBase;
    if (deltas_oldest_first.empty()) {
      out->value = std::move(base);
    } else {
      Slice base_slice(base);
      if (!op->FullMerge(out->user_key, &base_slice, deltas_oldest_first,
                         &out->value)) {
        return Status::Corruption("merge operator rejected operands");
      }
    }
    return Status::OK();
  }

  if (have_tombstone) {
    if (!deltas_oldest_first.empty()) {
      // Deltas newer than the tombstone define the value from scratch.
      out->emit = true;
      out->type = RecordType::kBase;
      if (!op->FullMerge(out->user_key, nullptr, deltas_oldest_first,
                         &out->value)) {
        return Status::Corruption("merge operator rejected operands");
      }
    } else if (bottom) {
      out->emit = false;  // nothing below C2 to shadow
    } else {
      out->emit = true;
      out->type = RecordType::kTombstone;
      out->value.clear();
    }
    return Status::OK();
  }

  // Deltas only.
  if (deltas_oldest_first.empty()) {
    out->emit = false;  // empty group (cannot happen, but be safe)
    return Status::OK();
  }
  if (bottom) {
    out->emit = true;
    out->type = RecordType::kBase;
    if (!op->FullMerge(out->user_key, nullptr, deltas_oldest_first,
                       &out->value)) {
      return Status::Corruption("merge operator rejected operands");
    }
    return Status::OK();
  }
  // Middle level: collapse the delta chain with partial merges so the
  // component keeps at most one record per key.
  std::string acc(deltas_oldest_first[0].data(), deltas_oldest_first[0].size());
  for (size_t i = 1; i < deltas_oldest_first.size(); i++) {
    std::string combined;
    if (!op->PartialMerge(out->user_key, acc, deltas_oldest_first[i],
                          &combined)) {
      return Status::Corruption("merge operator cannot partial-merge");
    }
    acc = std::move(combined);
  }
  out->emit = true;
  out->type = RecordType::kDelta;
  out->value = std::move(acc);
  return Status::OK();
}


}  // namespace blsm
