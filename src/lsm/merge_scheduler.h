#ifndef BLSM_LSM_MERGE_SCHEDULER_H_
#define BLSM_LSM_MERGE_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>

namespace blsm {

// Inputs to a level scheduler (§4): the progress estimators defined in §4.1.
//
// For merge i (1 = C0:C1, 2 = C1':C2):
//   inprogress_i  = bytes read by merge_i / (|C'_{i-1}| + |C_i|)     -- [0,1]
//   outprogress_1 = (inprogress_1 + floor(|C1| / |C0_target|)) / ceil(R)
//
// inprogress is "smooth": any merge activity increases it, and equal
// increments cost a bounded amount of I/O — the property §4.1 identifies as
// essential (estimators based only on large-tree I/O get "stuck" and stall).
struct SchedulerState {
  // Spring (C0) state.
  uint64_t c0_live_bytes = 0;
  uint64_t c0_target_bytes = 1;

  // Merge 1 (C0 -> C1).
  bool merge1_active = false;
  double merge1_inprogress = 0;
  double merge1_outprogress = 0;

  // Merge 2 (C1' -> C2).
  bool merge2_active = false;
  double merge2_inprogress = 0;
  bool c1_prime_exists = false;

  double c0_fill() const {
    return static_cast<double>(c0_live_bytes) /
           static_cast<double>(c0_target_bytes);
  }
};

// A level scheduler (§4: the paper's primary contribution class) decides,
// from the progress estimators, (a) how long an application write must stall
// and (b) whether each merge thread should pause between batches. Stateless:
// pure functions of SchedulerState, which makes them directly unit-testable.
class MergeScheduler {
 public:
  virtual ~MergeScheduler() = default;

  virtual std::string Name() const = 0;

  // One-shot delay applied to a write before it proceeds (the "spring"):
  // the writer sleeps this long once, then writes. Not a block condition.
  virtual uint64_t WriteDelayMicros(const SchedulerState& s) const = 0;

  // Hard stall: the writer must wait (re-polling) while this returns true.
  // All schedulers block when C0 is completely full; the gear scheduler
  // additionally blocks writers that outrun merge 1.
  virtual bool WriteBlocked(const SchedulerState& s) const = 0;

  // True if the C0:C1 merge should pause between batches.
  virtual bool PauseMerge1(const SchedulerState& s) const = 0;
  // True if the C1':C2 merge should pause between batches.
  virtual bool PauseMerge2(const SchedulerState& s) const = 0;
};

// Block-when-full baseline (§3.2's "most obvious solution"): writes proceed
// at full speed until C0 fills, then stall completely until the merge frees
// space. Reproduces the unbounded write pauses of naive LSM-trees.
class NaiveScheduler final : public MergeScheduler {
 public:
  std::string Name() const override { return "naive"; }
  uint64_t WriteDelayMicros(const SchedulerState&) const override {
    return 0;
  }
  bool WriteBlocked(const SchedulerState& s) const override {
    return s.c0_fill() >= 1.0;
  }
  bool PauseMerge1(const SchedulerState&) const override { return false; }
  bool PauseMerge2(const SchedulerState&) const override { return false; }
};

// Gear scheduler (§4.1): merge completions are synchronized like clock
// hands. Writers pace C0's fill fraction against merge 1's inprogress;
// merge 1 paces its outprogress against merge 2's inprogress; merge 2 shuts
// down if it runs ahead of upstream. Requires the C0/C0' partition (no
// snowshoveling, §4.3).
class GearScheduler final : public MergeScheduler {
 public:
  explicit GearScheduler(double slack = 0.05, uint64_t delay_quantum_us = 200)
      : slack_(slack), delay_quantum_us_(delay_quantum_us) {}

  std::string Name() const override { return "gear"; }
  uint64_t WriteDelayMicros(const SchedulerState&) const override {
    return 0;
  }
  bool WriteBlocked(const SchedulerState& s) const override;
  bool PauseMerge1(const SchedulerState& s) const override;
  bool PauseMerge2(const SchedulerState& s) const override;

 private:
  double slack_;
  uint64_t delay_quantum_us_;
};

// Spring and gear scheduler (§4.3): C0 is a spring kept between a low and a
// high water mark. Writers feel backpressure proportional to how far C0 has
// filled past the low mark (hard stall only at 100%); merge 1 pauses when C0
// drains below the low mark (so snowshoveling always has data to work with);
// the downstream gear pacing is unchanged.
class SpringGearScheduler final : public MergeScheduler {
 public:
  SpringGearScheduler(double low_watermark = 0.50, double high_watermark = 0.95,
                      uint64_t max_delay_us = 2000, double slack = 0.05)
      : low_(low_watermark),
        high_(high_watermark),
        max_delay_us_(max_delay_us),
        slack_(slack) {}

  std::string Name() const override { return "spring-gear"; }
  uint64_t WriteDelayMicros(const SchedulerState& s) const override;
  bool WriteBlocked(const SchedulerState& s) const override {
    return s.c0_fill() >= 1.0;  // spring fully compressed
  }
  bool PauseMerge1(const SchedulerState& s) const override;
  bool PauseMerge2(const SchedulerState& s) const override;

  double low_watermark() const { return low_; }
  double high_watermark() const { return high_; }

 private:
  double low_;
  double high_;
  uint64_t max_delay_us_;
  double slack_;
};

enum class SchedulerKind { kNaive, kGear, kSpringGear };

std::unique_ptr<MergeScheduler> MakeScheduler(SchedulerKind kind);

}  // namespace blsm

#endif  // BLSM_LSM_MERGE_SCHEDULER_H_
