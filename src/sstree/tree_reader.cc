#include "sstree/tree_reader.h"

#include <cassert>

namespace blsm::sstree {

Status TreeReader::Open(Env* env, BlockCache* cache, uint64_t file_id,
                        const std::string& fname,
                        std::unique_ptr<TreeReader>* out) {
  auto reader = std::unique_ptr<TreeReader>(new TreeReader());
  reader->env_ = env;
  reader->cache_ = cache;
  reader->file_id_ = file_id;

  Status s = env->GetFileSize(fname, &reader->file_size_);
  if (!s.ok()) return s;
  if (reader->file_size_ < Footer::kEncodedLength) {
    return Status::Corruption("tree component smaller than footer: " + fname);
  }
  s = env->NewRandomAccessFile(fname, &reader->file_);
  if (!s.ok()) return s;

  // Footer.
  char scratch[Footer::kEncodedLength];
  Slice footer_bytes;
  s = reader->file_->Read(reader->file_size_ - Footer::kEncodedLength,
                          Footer::kEncodedLength, &footer_bytes, scratch);
  if (!s.ok()) return s;
  s = reader->footer_.DecodeFrom(footer_bytes);
  if (!s.ok()) return s;

  // Bloom filter: loaded whole at open; it lives in RAM for the component's
  // lifetime (the paper's filters are memory-resident, §4.4.3).
  if (reader->footer_.bloom_size > 0) {
    std::string bloom_buf(reader->footer_.bloom_size, '\0');
    Slice bloom_bytes;
    s = reader->file_->Read(reader->footer_.bloom_offset,
                            reader->footer_.bloom_size, &bloom_bytes,
                            bloom_buf.data());
    if (!s.ok()) return s;
    s = BloomFilter::DecodeFrom(bloom_bytes, &reader->bloom_);
    if (!s.ok()) return s;
  }

  *out = std::move(reader);
  return Status::OK();
}

TreeReader::~TreeReader() {
  if (cache_ != nullptr) cache_->EraseFile(file_id_);
}

Status TreeReader::ReadBlock(const BlockPointer& ptr, bool fill_cache,
                             BlockCache::BlockHandle* out) const {
  if (cache_ != nullptr) {
    auto handle = cache_->Lookup(file_id_, ptr.offset);
    if (handle != nullptr) {
      *out = std::move(handle);
      return Status::OK();
    }
  }
  std::string raw(ptr.size, '\0');
  Slice raw_slice;
  Status s = file_->Read(ptr.offset, ptr.size, &raw_slice, raw.data());
  if (!s.ok()) return s;
  if (raw_slice.size() != ptr.size) {
    return Status::Corruption("short block read");
  }
  Slice payload;
  s = VerifyBlock(raw_slice, &payload);
  if (!s.ok()) return s;
  auto block = std::make_shared<std::string>(payload.data(), payload.size());
  if (cache_ != nullptr && fill_cache) {
    cache_->Insert(file_id_, ptr.offset, block);
  }
  *out = std::move(block);
  return Status::OK();
}

bool TreeReader::MayContain(const Slice& user_key) const {
  return bloom_ == nullptr || bloom_->MayContain(user_key);
}

std::optional<TreeReader::GetResult> TreeReader::Get(const Slice& user_key,
                                                     bool use_bloom,
                                                     Status* io_status) const {
  if (io_status != nullptr) *io_status = Status::OK();
  if (footer_.index_levels == 0) return std::nullopt;  // empty component
  if (use_bloom && bloom_ != nullptr && !bloom_->MayContain(user_key)) {
    return std::nullopt;
  }

  std::string target = InternalLookupKey(user_key);
  BlockPointer ptr{footer_.root_offset, footer_.root_size};
  BlockCache::BlockHandle handle;

  // Descend index levels; each cursor.Seek finds the first child whose last
  // key is >= target.
  for (uint32_t level = 0; level < footer_.index_levels; level++) {
    Status s = ReadBlock(ptr, /*fill_cache=*/true, &handle);
    if (!s.ok()) {
      if (io_status != nullptr) *io_status = s;
      return std::nullopt;
    }
    BlockCursor cursor{Slice(*handle)};
    cursor.Seek(target);
    if (!cursor.Valid()) return std::nullopt;  // past the largest key
    Slice v = cursor.value();
    if (!BlockPointer::DecodeFrom(&v, &ptr)) {
      if (io_status != nullptr) {
        *io_status = Status::Corruption("bad index entry");
      }
      return std::nullopt;
    }
  }

  Status s = ReadBlock(ptr, /*fill_cache=*/true, &handle);
  if (!s.ok()) {
    if (io_status != nullptr) *io_status = s;
    return std::nullopt;
  }
  BlockCursor cursor{Slice(*handle)};
  cursor.Seek(target);
  if (!cursor.Valid()) return std::nullopt;
  ParsedInternalKey parsed;
  if (!ParseInternalKey(cursor.key(), &parsed)) {
    if (io_status != nullptr) {
      *io_status = Status::Corruption("bad internal key");
    }
    return std::nullopt;
  }
  if (parsed.user_key != user_key) return std::nullopt;
  GetResult result;
  result.type = parsed.type;
  result.seq = parsed.seq;
  result.value.assign(cursor.value().data(), cursor.value().size());
  return result;
}

std::unique_ptr<TreeIterator> TreeReader::NewIterator(bool sequential) const {
  return std::make_unique<TreeIterator>(this, sequential);
}

// --- TreeIterator -----------------------------------------------------------

TreeIterator::TreeIterator(const TreeReader* tree, bool sequential)
    : tree_(tree), sequential_(sequential) {}

bool TreeIterator::DescendFrom(size_t i, const Slice* seek_target) {
  // levels_[i] must be a valid index cursor; loads its child into
  // levels_[i+1] and positions that cursor.
  Slice v = levels_[i].cursor->value();
  BlockPointer ptr;
  if (!BlockPointer::DecodeFrom(&v, &ptr)) {
    status_ = Status::Corruption("bad index entry");
    return false;
  }
  BlockCache::BlockHandle handle;
  Status s = tree_->ReadBlock(ptr, /*fill_cache=*/!sequential_, &handle);
  if (!s.ok()) {
    status_ = s;
    return false;
  }
  Level& child = levels_[i + 1];
  child.handle = std::move(handle);
  child.cursor = std::make_unique<BlockCursor>(Slice(*child.handle));
  if (seek_target != nullptr) {
    child.cursor->Seek(*seek_target);
  } else {
    child.cursor->SeekToFirst();
  }
  return child.cursor->Valid();
}

void TreeIterator::SeekToFirst() { Seek(Slice()); }

void TreeIterator::Seek(const Slice& target) {
  valid_ = false;
  status_ = Status::OK();
  const Footer& footer = tree_->footer();
  if (footer.index_levels == 0) return;

  levels_.clear();
  levels_.resize(footer.index_levels + 1);

  // Root.
  BlockPointer root{footer.root_offset, footer.root_size};
  BlockCache::BlockHandle handle;
  Status s = tree_->ReadBlock(root, /*fill_cache=*/!sequential_, &handle);
  if (!s.ok()) {
    status_ = s;
    return;
  }
  levels_[0].handle = std::move(handle);
  levels_[0].cursor = std::make_unique<BlockCursor>(Slice(*levels_[0].handle));
  const bool seeking = !target.empty();
  if (seeking) {
    levels_[0].cursor->Seek(target);
  } else {
    levels_[0].cursor->SeekToFirst();
  }
  if (!levels_[0].cursor->Valid()) return;

  for (size_t i = 0; i + 1 < levels_.size(); i++) {
    if (!DescendFrom(i, seeking ? &target : nullptr)) return;
  }
  valid_ = true;
}

void TreeIterator::Next() {
  assert(valid_);
  Level& leaf = levels_.back();
  leaf.cursor->Next();
  if (leaf.cursor->Valid()) return;
  AdvanceLeaf();
}

void TreeIterator::AdvanceLeaf() {
  // Walk up to the deepest index level that can advance; then descend
  // leftmost back to the leaf.
  valid_ = false;
  if (levels_.size() < 2) return;
  size_t i = levels_.size() - 2;  // deepest index level
  while (true) {
    levels_[i].cursor->Next();
    if (levels_[i].cursor->Valid()) break;
    if (i == 0) return;  // root exhausted
    i--;
  }
  for (size_t j = i; j + 1 < levels_.size(); j++) {
    if (!DescendFrom(j, nullptr)) return;
  }
  valid_ = true;
}

Slice TreeIterator::key() const { return levels_.back().cursor->key(); }
Slice TreeIterator::value() const { return levels_.back().cursor->value(); }

}  // namespace blsm::sstree
