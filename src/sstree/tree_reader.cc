#include "sstree/tree_reader.h"

#include <algorithm>
#include <cassert>

namespace blsm::sstree {

Status TreeReader::Open(Env* env, BlockCache* cache, uint64_t file_id,
                        const std::string& fname,
                        std::unique_ptr<TreeReader>* out) {
  auto reader = std::unique_ptr<TreeReader>(new TreeReader());
  reader->env_ = env;
  reader->cache_ = cache;
  reader->file_id_ = file_id;
  reader->fname_ = fname;

  Status s = env->GetFileSize(fname, &reader->file_size_);
  if (!s.ok()) return s;
  if (reader->file_size_ < Footer::kEncodedLength) {
    return Status::Corruption("tree component smaller than footer: " + fname);
  }
  s = env->NewRandomAccessFile(fname, &reader->file_);
  if (!s.ok()) return s;

  // Footer.
  char scratch[Footer::kEncodedLength];
  Slice footer_bytes;
  s = reader->file_->Read(reader->file_size_ - Footer::kEncodedLength,
                          Footer::kEncodedLength, &footer_bytes, scratch);
  if (!s.ok()) return s;
  s = reader->footer_.DecodeFrom(footer_bytes);
  if (!s.ok()) return Status::Corruption(fname + ": " + s.ToString());

  // Bloom filter: loaded whole at open; it lives in RAM for the component's
  // lifetime (the paper's filters are memory-resident, §4.4.3).
  if (reader->footer_.bloom_size > 0) {
    std::string bloom_buf(reader->footer_.bloom_size, '\0');
    Slice bloom_bytes;
    s = reader->file_->Read(reader->footer_.bloom_offset,
                            reader->footer_.bloom_size, &bloom_bytes,
                            bloom_buf.data());
    if (!s.ok()) return s;
    s = BloomFilter::DecodeFrom(bloom_bytes, &reader->bloom_);
    if (!s.ok()) return s;
  }

  *out = std::move(reader);
  return Status::OK();
}

TreeReader::~TreeReader() {
  if (cache_ != nullptr) cache_->EraseFile(file_id_);
}

Status TreeReader::ReadBlock(const BlockPointer& ptr, bool fill_cache,
                             BlockCache::BlockHandle* out) const {
  if (cache_ != nullptr) {
    auto handle = cache_->Lookup(file_id_, ptr.offset);
    if (handle != nullptr) {
      *out = std::move(handle);
      return Status::OK();
    }
  }
  std::string raw(ptr.size, '\0');
  Slice raw_slice;
  Status s = file_->Read(ptr.offset, ptr.size, &raw_slice, raw.data());
  if (!s.ok()) return s;
  if (raw_slice.size() != ptr.size) {
    return Status::Corruption(fname_ + " @" + std::to_string(ptr.offset) +
                              ": short block read");
  }
  Slice payload;
  s = VerifyBlock(raw_slice, &payload);
  if (!s.ok()) {
    // Attach the component's identity: "which file, which block" is what a
    // repair workflow (blsm_inspect verify) needs to act on.
    return Status::Corruption(fname_ + " @" + std::to_string(ptr.offset) +
                              ": " + s.ToString());
  }
  auto block = std::make_shared<std::string>(payload.data(), payload.size());
  if (cache_ != nullptr && fill_cache) {
    cache_->Insert(file_id_, ptr.offset, block);
  }
  *out = std::move(block);
  return Status::OK();
}

bool TreeReader::MayContain(const Slice& user_key) const {
  return bloom_ == nullptr || bloom_->MayContain(user_key);
}

std::optional<TreeReader::GetResult> TreeReader::Get(const Slice& user_key,
                                                     bool use_bloom,
                                                     Status* io_status) const {
  if (io_status != nullptr) *io_status = Status::OK();
  if (footer_.index_levels == 0) return std::nullopt;  // empty component
  if (use_bloom && bloom_ != nullptr && !bloom_->MayContain(user_key)) {
    return std::nullopt;
  }

  std::string target = InternalLookupKey(user_key);
  BlockPointer ptr{footer_.root_offset, footer_.root_size};
  BlockCache::BlockHandle handle;

  // Descend index levels; each cursor.Seek finds the first child whose last
  // key is >= target.
  for (uint32_t level = 0; level < footer_.index_levels; level++) {
    Status s = ReadBlock(ptr, /*fill_cache=*/true, &handle);
    if (!s.ok()) {
      if (io_status != nullptr) *io_status = s;
      return std::nullopt;
    }
    BlockCursor cursor{Slice(*handle)};
    cursor.Seek(target);
    if (!cursor.Valid()) return std::nullopt;  // past the largest key
    Slice v = cursor.value();
    if (!BlockPointer::DecodeFrom(&v, &ptr)) {
      if (io_status != nullptr) {
        *io_status = Status::Corruption("bad index entry");
      }
      return std::nullopt;
    }
  }

  Status s = ReadBlock(ptr, /*fill_cache=*/true, &handle);
  if (!s.ok()) {
    if (io_status != nullptr) *io_status = s;
    return std::nullopt;
  }
  BlockCursor cursor{Slice(*handle)};
  cursor.Seek(target);
  if (!cursor.Valid()) return std::nullopt;
  ParsedInternalKey parsed;
  if (!ParseInternalKey(cursor.key(), &parsed)) {
    if (io_status != nullptr) {
      *io_status = Status::Corruption("bad internal key");
    }
    return std::nullopt;
  }
  if (parsed.user_key != user_key) return std::nullopt;
  GetResult result;
  result.type = parsed.type;
  result.seq = parsed.seq;
  result.value.assign(cursor.value().data(), cursor.value().size());
  return result;
}

std::vector<std::optional<TreeReader::GetResult>> TreeReader::MultiGet(
    const std::vector<Slice>& user_keys, std::vector<Status>* io_statuses,
    uint64_t* blocks_coalesced) const {
  std::vector<std::optional<GetResult>> results(user_keys.size());
  io_statuses->assign(user_keys.size(), Status::OK());
  if (footer_.index_levels == 0) return results;  // empty component

  // Resolves the cursor (positioned at the first entry >= the key's lookup
  // target) into results[idx]; a mismatched user key simply means absent.
  auto fill = [&](BlockCursor& cursor, size_t idx) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(cursor.key(), &parsed)) {
      (*io_statuses)[idx] = Status::Corruption("bad internal key");
      return;
    }
    if (parsed.user_key != user_keys[idx]) return;
    GetResult result;
    result.type = parsed.type;
    result.seq = parsed.seq;
    result.value.assign(cursor.value().data(), cursor.value().size());
    results[idx] = std::move(result);
  };

  BlockCache::BlockHandle data_handle;  // most recently decoded data block
  bool have_data_block = false;
  std::string target;

  for (size_t i = 0; i < user_keys.size(); i++) {
    target = InternalLookupKey(user_keys[i]);

    // Try the previous key's data block first. With ascending targets a hit
    // here is globally correct: every block before it holds only keys below
    // the previous target, hence below this one, so the first entry >=
    // target inside this block is the first in the whole component.
    if (have_data_block) {
      BlockCursor cursor{Slice(*data_handle)};
      cursor.Seek(target);
      if (cursor.Valid()) {
        if (blocks_coalesced != nullptr) (*blocks_coalesced)++;
        fill(cursor, i);
        continue;
      }
    }

    // Fresh descent from the root.
    BlockPointer ptr{footer_.root_offset, footer_.root_size};
    BlockCache::BlockHandle handle;
    bool descended = true;
    for (uint32_t level = 0; level < footer_.index_levels; level++) {
      Status s = ReadBlock(ptr, /*fill_cache=*/true, &handle);
      if (!s.ok()) {
        (*io_statuses)[i] = s;
        descended = false;
        break;
      }
      BlockCursor cursor{Slice(*handle)};
      cursor.Seek(target);
      if (!cursor.Valid()) {
        if (level == 0) {
          // Past the component's largest key — and so is every later key of
          // this ascending batch.
          return results;
        }
        // A parent entry promised this subtree's last key >= target.
        (*io_statuses)[i] = Status::Corruption("bad index entry");
        descended = false;
        break;
      }
      Slice v = cursor.value();
      if (!BlockPointer::DecodeFrom(&v, &ptr)) {
        (*io_statuses)[i] = Status::Corruption("bad index entry");
        descended = false;
        break;
      }
    }
    if (!descended) continue;

    Status s = ReadBlock(ptr, /*fill_cache=*/true, &handle);
    if (!s.ok()) {
      (*io_statuses)[i] = s;
      continue;
    }
    data_handle = std::move(handle);
    have_data_block = true;
    BlockCursor cursor{Slice(*data_handle)};
    cursor.Seek(target);
    if (cursor.Valid()) fill(cursor, i);
  }
  return results;
}

std::unique_ptr<TreeIterator> TreeReader::NewIterator(bool sequential) const {
  return std::make_unique<TreeIterator>(this, sequential);
}

Status TreeReader::VerifyBlockAt(const BlockPointer& ptr, uint32_t depth,
                                 uint64_t* bad_offset, uint64_t* entries,
                                 uint64_t* data_end) const {
  BlockCache::BlockHandle handle;
  // fill_cache=false: verification must read the media, and a one-shot walk
  // of the whole file would only evict useful entries.
  Status s = ReadBlock(ptr, /*fill_cache=*/false, &handle);
  if (!s.ok()) {
    if (bad_offset != nullptr) *bad_offset = ptr.offset;
    return s;
  }
  BlockCursor cursor{Slice(*handle)};
  if (depth == footer_.index_levels) {  // data block
    for (cursor.SeekToFirst(); cursor.Valid(); cursor.Next()) (*entries)++;
    if (data_end != nullptr) {
      *data_end = std::max(*data_end, ptr.offset + ptr.size);
    }
    return Status::OK();
  }
  for (cursor.SeekToFirst(); cursor.Valid(); cursor.Next()) {
    Slice v = cursor.value();
    BlockPointer child;
    if (!BlockPointer::DecodeFrom(&v, &child)) {
      if (bad_offset != nullptr) *bad_offset = ptr.offset;
      return Status::Corruption(fname_ + " @" + std::to_string(ptr.offset) +
                                ": bad index entry");
    }
    s = VerifyBlockAt(child, depth + 1, bad_offset, entries, data_end);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status TreeReader::VerifyAllBlocks(uint64_t* bad_offset) const {
  if (bad_offset != nullptr) *bad_offset = 0;
  uint64_t entries = 0;
  uint64_t data_end = 0;
  if (footer_.index_levels > 0) {
    // Root is index level 0; data blocks sit below the last index level.
    Status s = VerifyBlockAt(BlockPointer{footer_.root_offset,
                                          footer_.root_size},
                             /*depth=*/0, bad_offset, &entries, &data_end);
    if (!s.ok()) return s;
  }
  // The footer carries no checksum of its own; the offsets vouch for
  // themselves by resolving to valid blocks, but the two summary fields need
  // cross-checking against what the walk actually saw. The builder writes
  // data blocks contiguously from 0, so the data region ends exactly at the
  // last data block's end.
  if (entries != footer_.num_entries) {
    return Status::Corruption(
        fname_ + ": footer claims " + std::to_string(footer_.num_entries) +
        " entries, blocks hold " + std::to_string(entries));
  }
  if (data_end != footer_.data_bytes) {
    return Status::Corruption(
        fname_ + ": footer claims " + std::to_string(footer_.data_bytes) +
        " data bytes, blocks end at " + std::to_string(data_end));
  }
  if (footer_.bloom_size > 0) {
    std::string buf(footer_.bloom_size, '\0');
    Slice bytes;
    Status s = file_->Read(footer_.bloom_offset, footer_.bloom_size, &bytes,
                           buf.data());
    if (s.ok() && bytes.size() != footer_.bloom_size) {
      s = Status::Corruption("short bloom read");
    }
    std::unique_ptr<BloomFilter> bloom;
    if (s.ok()) s = BloomFilter::DecodeFrom(bytes, &bloom);
    if (!s.ok()) {
      if (bad_offset != nullptr) *bad_offset = footer_.bloom_offset;
      return Status::Corruption(fname_ + " @" +
                                std::to_string(footer_.bloom_offset) +
                                ": " + s.ToString());
    }
  }
  return Status::OK();
}

// --- TreeIterator -----------------------------------------------------------

TreeIterator::TreeIterator(const TreeReader* tree, bool sequential)
    : tree_(tree), sequential_(sequential) {}

bool TreeIterator::DescendFrom(size_t i, const Slice* seek_target) {
  // levels_[i] must be a valid index cursor; loads its child into
  // levels_[i+1] and positions that cursor.
  Slice v = levels_[i].cursor->value();
  BlockPointer ptr;
  if (!BlockPointer::DecodeFrom(&v, &ptr)) {
    status_ = Status::Corruption("bad index entry");
    return false;
  }
  BlockCache::BlockHandle handle;
  Status s = tree_->ReadBlock(ptr, /*fill_cache=*/!sequential_, &handle);
  if (!s.ok()) {
    status_ = s;
    return false;
  }
  Level& child = levels_[i + 1];
  child.handle = std::move(handle);
  child.cursor = std::make_unique<BlockCursor>(Slice(*child.handle));
  if (seek_target != nullptr) {
    child.cursor->Seek(*seek_target);
  } else {
    child.cursor->SeekToFirst();
  }
  return child.cursor->Valid();
}

void TreeIterator::SeekToFirst() { Seek(Slice()); }

void TreeIterator::Seek(const Slice& target) {
  valid_ = false;
  status_ = Status::OK();
  const Footer& footer = tree_->footer();
  if (footer.index_levels == 0) return;

  levels_.clear();
  levels_.resize(footer.index_levels + 1);

  // Root.
  BlockPointer root{footer.root_offset, footer.root_size};
  BlockCache::BlockHandle handle;
  Status s = tree_->ReadBlock(root, /*fill_cache=*/!sequential_, &handle);
  if (!s.ok()) {
    status_ = s;
    return;
  }
  levels_[0].handle = std::move(handle);
  levels_[0].cursor = std::make_unique<BlockCursor>(Slice(*levels_[0].handle));
  const bool seeking = !target.empty();
  if (seeking) {
    levels_[0].cursor->Seek(target);
  } else {
    levels_[0].cursor->SeekToFirst();
  }
  if (!levels_[0].cursor->Valid()) return;

  for (size_t i = 0; i + 1 < levels_.size(); i++) {
    if (!DescendFrom(i, seeking ? &target : nullptr)) return;
  }
  valid_ = true;
}

void TreeIterator::Next() {
  assert(valid_);
  Level& leaf = levels_.back();
  leaf.cursor->Next();
  if (leaf.cursor->Valid()) return;
  AdvanceLeaf();
}

void TreeIterator::AdvanceLeaf() {
  // Walk up to the deepest index level that can advance; then descend
  // leftmost back to the leaf.
  valid_ = false;
  if (levels_.size() < 2) return;
  size_t i = levels_.size() - 2;  // deepest index level
  while (true) {
    levels_[i].cursor->Next();
    if (levels_[i].cursor->Valid()) break;
    if (i == 0) return;  // root exhausted
    i--;
  }
  for (size_t j = i; j + 1 < levels_.size(); j++) {
    if (!DescendFrom(j, nullptr)) return;
  }
  valid_ = true;
}

Slice TreeIterator::key() const { return levels_.back().cursor->key(); }
Slice TreeIterator::value() const { return levels_.back().cursor->value(); }

}  // namespace blsm::sstree
