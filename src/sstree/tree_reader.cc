#include "sstree/tree_reader.h"

#include <algorithm>
#include <cassert>

namespace blsm::sstree {

Status TreeReader::Open(Env* env, BlockCache* cache, uint64_t file_id,
                        const std::string& fname,
                        std::unique_ptr<TreeReader>* out) {
  auto reader = std::unique_ptr<TreeReader>(new TreeReader());
  reader->env_ = env;
  reader->cache_ = cache;
  reader->file_id_ = file_id;
  reader->fname_ = fname;

  Status s = env->GetFileSize(fname, &reader->file_size_);
  if (!s.ok()) return s;
  if (reader->file_size_ < Footer::kEncodedLength) {
    return Status::Corruption("tree component smaller than footer: " + fname);
  }
  s = env->NewRandomAccessFile(fname, &reader->file_);
  if (!s.ok()) return s;

  // Footer.
  char scratch[Footer::kEncodedLength];
  Slice footer_bytes;
  s = reader->file_->Read(reader->file_size_ - Footer::kEncodedLength,
                          Footer::kEncodedLength, &footer_bytes, scratch);
  if (!s.ok()) return s;
  s = reader->footer_.DecodeFrom(footer_bytes);
  if (!s.ok()) return Status::Corruption(fname + ": " + s.ToString());

  // Bloom filter: loaded whole at open; it lives in RAM for the component's
  // lifetime (the paper's filters are memory-resident, §4.4.3).
  if (reader->footer_.bloom_size > 0) {
    std::string bloom_buf(reader->footer_.bloom_size, '\0');
    Slice bloom_bytes;
    s = reader->file_->Read(reader->footer_.bloom_offset,
                            reader->footer_.bloom_size, &bloom_bytes,
                            bloom_buf.data());
    if (!s.ok()) return s;
    s = BloomFilter::DecodeFrom(bloom_bytes, &reader->bloom_);
    if (!s.ok()) return s;
  }

  *out = std::move(reader);
  return Status::OK();
}

TreeReader::~TreeReader() {
  if (cache_ != nullptr) cache_->EraseFile(file_id_);
}

Status TreeReader::ReadBlock(const BlockPointer& ptr, bool fill_cache,
                             BlockCache::BlockHandle* out) const {
  if (cache_ != nullptr) {
    auto handle = cache_->Lookup(file_id_, ptr.offset);
    if (handle != nullptr) {
      *out = std::move(handle);
      return Status::OK();
    }
  }
  std::string raw(ptr.size, '\0');
  Slice raw_slice;
  Status s = file_->Read(ptr.offset, ptr.size, &raw_slice, raw.data());
  if (!s.ok()) return s;
  if (raw_slice.size() != ptr.size) {
    return Status::Corruption(fname_ + " @" + std::to_string(ptr.offset) +
                              ": short block read");
  }
  Slice payload;
  s = VerifyBlock(raw_slice, &payload);
  if (!s.ok()) {
    // Attach the component's identity: "which file, which block" is what a
    // repair workflow (blsm_inspect verify) needs to act on.
    return Status::Corruption(fname_ + " @" + std::to_string(ptr.offset) +
                              ": " + s.ToString());
  }
  auto block = std::make_shared<std::string>(payload.data(), payload.size());
  if (cache_ != nullptr && fill_cache) {
    cache_->Insert(file_id_, ptr.offset, block);
  }
  *out = std::move(block);
  return Status::OK();
}

bool TreeReader::MayContain(const Slice& user_key) const {
  return bloom_ == nullptr || bloom_->MayContain(user_key);
}

std::optional<TreeReader::GetResult> TreeReader::Get(const Slice& user_key,
                                                     bool use_bloom,
                                                     Status* io_status) const {
  if (io_status != nullptr) *io_status = Status::OK();
  if (footer_.index_levels == 0) return std::nullopt;  // empty component
  if (use_bloom && bloom_ != nullptr && !bloom_->MayContain(user_key)) {
    return std::nullopt;
  }

  std::string target = InternalLookupKey(user_key);
  BlockPointer ptr{footer_.root_offset, footer_.root_size};
  BlockCache::BlockHandle handle;

  // Descend index levels; each cursor.Seek finds the first child whose last
  // key is >= target.
  for (uint32_t level = 0; level < footer_.index_levels; level++) {
    Status s = ReadBlock(ptr, /*fill_cache=*/true, &handle);
    if (!s.ok()) {
      if (io_status != nullptr) *io_status = s;
      return std::nullopt;
    }
    BlockCursor cursor{Slice(*handle)};
    cursor.Seek(target);
    if (!cursor.Valid()) return std::nullopt;  // past the largest key
    Slice v = cursor.value();
    if (!BlockPointer::DecodeFrom(&v, &ptr)) {
      if (io_status != nullptr) {
        *io_status = Status::Corruption("bad index entry");
      }
      return std::nullopt;
    }
  }

  Status s = ReadBlock(ptr, /*fill_cache=*/true, &handle);
  if (!s.ok()) {
    if (io_status != nullptr) *io_status = s;
    return std::nullopt;
  }
  BlockCursor cursor{Slice(*handle)};
  cursor.Seek(target);
  if (!cursor.Valid()) return std::nullopt;
  ParsedInternalKey parsed;
  if (!ParseInternalKey(cursor.key(), &parsed)) {
    if (io_status != nullptr) {
      *io_status = Status::Corruption("bad internal key");
    }
    return std::nullopt;
  }
  if (parsed.user_key != user_key) return std::nullopt;
  GetResult result;
  result.type = parsed.type;
  result.seq = parsed.seq;
  result.value.assign(cursor.value().data(), cursor.value().size());
  return result;
}

std::vector<std::optional<TreeReader::GetResult>> TreeReader::MultiGet(
    const std::vector<Slice>& user_keys, std::vector<Status>* io_statuses,
    uint64_t* blocks_coalesced) const {
  std::vector<std::optional<GetResult>> results(user_keys.size());
  io_statuses->assign(user_keys.size(), Status::OK());
  if (footer_.index_levels == 0) return results;  // empty component

  // Phase 1: resolve every key to its data-block pointer by descending the
  // index levels (through the cache — index blocks are hot by design). The
  // data blocks themselves are NOT read here; collecting all the pointers
  // first is what lets phase 2 fetch the misses as one batch.
  struct KeyPlan {
    BlockPointer ptr;
    bool resolved = false;
    size_t block_slot = 0;  // index into `blocks`, set in phase 2
  };
  std::vector<KeyPlan> plans(user_keys.size());
  std::vector<std::string> targets(user_keys.size());
  size_t limit = user_keys.size();

  for (size_t i = 0; i < limit; i++) {
    targets[i] = InternalLookupKey(user_keys[i]);
    BlockPointer ptr{footer_.root_offset, footer_.root_size};
    BlockCache::BlockHandle handle;
    bool descended = true;
    for (uint32_t level = 0; level < footer_.index_levels; level++) {
      Status s = ReadBlock(ptr, /*fill_cache=*/true, &handle);
      if (!s.ok()) {
        (*io_statuses)[i] = s;
        descended = false;
        break;
      }
      BlockCursor cursor{Slice(*handle)};
      cursor.Seek(targets[i]);
      if (!cursor.Valid()) {
        if (level == 0) {
          // Past the component's largest key — and so is every later key of
          // this ascending batch.
          limit = i;
          break;
        }
        // A parent entry promised this subtree's last key >= target.
        (*io_statuses)[i] = Status::Corruption("bad index entry");
        descended = false;
        break;
      }
      Slice v = cursor.value();
      if (!BlockPointer::DecodeFrom(&v, &ptr)) {
        (*io_statuses)[i] = Status::Corruption("bad index entry");
        descended = false;
        break;
      }
    }
    if (i < limit && descended) {
      plans[i].ptr = ptr;
      plans[i].resolved = true;
    }
  }

  // Phase 2: unique data blocks, in key order. Ascending keys resolve to
  // non-decreasing block offsets, so consecutive dedup is global dedup; a
  // repeat is exactly the block reuse the old one-block lookbehind counted.
  struct BlockSlot {
    BlockPointer ptr;
    BlockCache::BlockHandle handle;  // null until fetched
    Status status;
    size_t batch_index = 0;  // position in `batch` when it is a cache miss
    bool miss = false;
  };
  std::vector<BlockSlot> blocks;
  for (size_t i = 0; i < limit; i++) {
    if (!plans[i].resolved) continue;
    if (!blocks.empty() && blocks.back().ptr.offset == plans[i].ptr.offset &&
        blocks.back().ptr.size == plans[i].ptr.size) {
      if (blocks_coalesced != nullptr) (*blocks_coalesced)++;
    } else {
      BlockSlot slot;
      slot.ptr = plans[i].ptr;
      if (cache_ != nullptr) slot.handle = cache_->Lookup(file_id_, slot.ptr.offset);
      slot.miss = slot.handle == nullptr;
      blocks.push_back(std::move(slot));
    }
    plans[i].block_slot = blocks.size() - 1;
  }

  // One batched submission for every miss. scratch_arena is sized up front
  // so the per-request scratch pointers stay stable.
  std::vector<ReadRequest> batch;
  size_t scratch_bytes = 0;
  for (auto& slot : blocks) {
    if (slot.miss) scratch_bytes += slot.ptr.size;
  }
  std::string scratch_arena(scratch_bytes, '\0');
  size_t scratch_pos = 0;
  for (auto& slot : blocks) {
    if (!slot.miss) continue;
    ReadRequest req;
    req.offset = slot.ptr.offset;
    req.len = slot.ptr.size;
    req.scratch = scratch_arena.data() + scratch_pos;
    scratch_pos += slot.ptr.size;
    slot.batch_index = batch.size();
    batch.push_back(req);
  }
  if (!batch.empty()) {
    Status s = file_->MultiRead(batch.data(), batch.size());
    for (auto& slot : blocks) {
      if (!slot.miss) continue;
      ReadRequest& req = batch[slot.batch_index];
      Status rs = s.ok() ? req.status : s;
      if (rs.ok() && req.result.size() != slot.ptr.size) {
        rs = Status::Corruption(fname_ + " @" +
                                std::to_string(slot.ptr.offset) +
                                ": short block read");
      }
      Slice payload;
      if (rs.ok()) {
        rs = VerifyBlock(req.result, &payload);
        if (!rs.ok()) {
          rs = Status::Corruption(fname_ + " @" +
                                  std::to_string(slot.ptr.offset) + ": " +
                                  rs.ToString());
        }
      }
      if (!rs.ok()) {
        slot.status = rs;
        continue;
      }
      auto block =
          std::make_shared<std::string>(payload.data(), payload.size());
      if (cache_ != nullptr) cache_->Insert(file_id_, slot.ptr.offset, block);
      slot.handle = std::move(block);
    }
  }

  // Phase 3: resolve each key inside its (now in-memory) data block.
  for (size_t i = 0; i < limit; i++) {
    if (!plans[i].resolved || !(*io_statuses)[i].ok()) continue;
    BlockSlot& slot = blocks[plans[i].block_slot];
    if (!slot.status.ok()) {
      (*io_statuses)[i] = slot.status;
      continue;
    }
    BlockCursor cursor{Slice(*slot.handle)};
    cursor.Seek(targets[i]);
    if (!cursor.Valid()) continue;  // key beyond this block: absent
    ParsedInternalKey parsed;
    if (!ParseInternalKey(cursor.key(), &parsed)) {
      (*io_statuses)[i] = Status::Corruption("bad internal key");
      continue;
    }
    if (parsed.user_key != user_keys[i]) continue;
    GetResult result;
    result.type = parsed.type;
    result.seq = parsed.seq;
    result.value.assign(cursor.value().data(), cursor.value().size());
    results[i] = std::move(result);
  }
  return results;
}

std::unique_ptr<TreeIterator> TreeReader::NewIterator(
    bool sequential, uint64_t scan_readahead_bytes) const {
  return std::make_unique<TreeIterator>(this, sequential,
                                        scan_readahead_bytes);
}

Status TreeReader::VerifyBlockAt(const BlockPointer& ptr, uint32_t depth,
                                 uint64_t* bad_offset, uint64_t* entries,
                                 uint64_t* data_end) const {
  BlockCache::BlockHandle handle;
  // fill_cache=false: verification must read the media, and a one-shot walk
  // of the whole file would only evict useful entries.
  Status s = ReadBlock(ptr, /*fill_cache=*/false, &handle);
  if (!s.ok()) {
    if (bad_offset != nullptr) *bad_offset = ptr.offset;
    return s;
  }
  BlockCursor cursor{Slice(*handle)};
  if (depth == footer_.index_levels) {  // data block
    for (cursor.SeekToFirst(); cursor.Valid(); cursor.Next()) (*entries)++;
    if (data_end != nullptr) {
      *data_end = std::max(*data_end, ptr.offset + ptr.size);
    }
    return Status::OK();
  }
  for (cursor.SeekToFirst(); cursor.Valid(); cursor.Next()) {
    Slice v = cursor.value();
    BlockPointer child;
    if (!BlockPointer::DecodeFrom(&v, &child)) {
      if (bad_offset != nullptr) *bad_offset = ptr.offset;
      return Status::Corruption(fname_ + " @" + std::to_string(ptr.offset) +
                                ": bad index entry");
    }
    s = VerifyBlockAt(child, depth + 1, bad_offset, entries, data_end);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status TreeReader::VerifyAllBlocks(uint64_t* bad_offset) const {
  if (bad_offset != nullptr) *bad_offset = 0;
  uint64_t entries = 0;
  uint64_t data_end = 0;
  if (footer_.index_levels > 0) {
    // Root is index level 0; data blocks sit below the last index level.
    Status s = VerifyBlockAt(BlockPointer{footer_.root_offset,
                                          footer_.root_size},
                             /*depth=*/0, bad_offset, &entries, &data_end);
    if (!s.ok()) return s;
  }
  // The footer carries no checksum of its own; the offsets vouch for
  // themselves by resolving to valid blocks, but the two summary fields need
  // cross-checking against what the walk actually saw. The builder writes
  // data blocks contiguously from 0, so the data region ends exactly at the
  // last data block's end.
  if (entries != footer_.num_entries) {
    return Status::Corruption(
        fname_ + ": footer claims " + std::to_string(footer_.num_entries) +
        " entries, blocks hold " + std::to_string(entries));
  }
  if (data_end != footer_.data_bytes) {
    return Status::Corruption(
        fname_ + ": footer claims " + std::to_string(footer_.data_bytes) +
        " data bytes, blocks end at " + std::to_string(data_end));
  }
  if (footer_.bloom_size > 0) {
    std::string buf(footer_.bloom_size, '\0');
    Slice bytes;
    Status s = file_->Read(footer_.bloom_offset, footer_.bloom_size, &bytes,
                           buf.data());
    if (s.ok() && bytes.size() != footer_.bloom_size) {
      s = Status::Corruption("short bloom read");
    }
    std::unique_ptr<BloomFilter> bloom;
    if (s.ok()) s = BloomFilter::DecodeFrom(bytes, &bloom);
    if (!s.ok()) {
      if (bad_offset != nullptr) *bad_offset = footer_.bloom_offset;
      return Status::Corruption(fname_ + " @" +
                                std::to_string(footer_.bloom_offset) +
                                ": " + s.ToString());
    }
  }
  return Status::OK();
}

// --- TreeIterator -----------------------------------------------------------

namespace {
constexpr uint64_t kInitialReadAheadBytes = 16 << 10;
// A scan's hinted-but-unread tail is pure wasted IO (a merge input has no
// tail — it reads to the end), so seek-positioned iterators only hint when
// the caller opts in with a per-scan cap (ReadOptions::readahead_bytes),
// which is typically much smaller than the merge window.
constexpr uint64_t kMergeReadAheadCap = 256 << 10;
}  // namespace

TreeIterator::TreeIterator(const TreeReader* tree, bool sequential,
                           uint64_t scan_readahead_bytes)
    : tree_(tree),
      sequential_(sequential),
      scan_readahead_cap_(scan_readahead_bytes),
      readahead_bytes_(sequential ? kMergeReadAheadCap : 0) {}

bool TreeIterator::DescendFrom(size_t i, const Slice* seek_target) {
  // levels_[i] must be a valid index cursor; loads its child into
  // levels_[i+1] and positions that cursor.
  Slice v = levels_[i].cursor->value();
  BlockPointer ptr;
  if (!BlockPointer::DecodeFrom(&v, &ptr)) {
    status_ = Status::Corruption("bad index entry");
    return false;
  }
  BlockCache::BlockHandle handle;
  Status s = tree_->ReadBlock(ptr, /*fill_cache=*/!sequential_, &handle);
  if (!s.ok()) {
    status_ = s;
    return false;
  }
  if (i + 2 == levels_.size()) {
    // Child is a data block: keep the kernel readahead frontier ahead of
    // the traversal (merges and scans both walk data blocks in file
    // order). The window starts small and doubles per continued descent so
    // a seek that never advances past one block hints nothing. A zero cap
    // (the scan default) disables hints for this iterator.
    uint64_t cap = sequential_ ? kMergeReadAheadCap : scan_readahead_cap_;
    uint64_t end = ptr.offset + ptr.size;
    if (cap > 0 && end >= readahead_until_ && end < tree_->data_bytes()) {
      if (readahead_bytes_ == 0) {
        // armed; hint next time
        readahead_bytes_ = std::min(cap, kInitialReadAheadBytes);
      } else {
        tree_->HintReadAhead(end, readahead_bytes_);
        readahead_until_ = end + readahead_bytes_;
        readahead_bytes_ = std::min(cap, readahead_bytes_ * 2);
      }
    }
  }
  Level& child = levels_[i + 1];
  child.handle = std::move(handle);
  child.cursor = std::make_unique<BlockCursor>(Slice(*child.handle));
  if (seek_target != nullptr) {
    child.cursor->Seek(*seek_target);
  } else {
    child.cursor->SeekToFirst();
  }
  return child.cursor->Valid();
}

void TreeIterator::SeekToFirst() { Seek(Slice()); }

void TreeIterator::Seek(const Slice& target) {
  valid_ = false;
  status_ = Status::OK();
  const Footer& footer = tree_->footer();
  if (footer.index_levels == 0) return;

  levels_.clear();
  levels_.resize(footer.index_levels + 1);

  // Root.
  BlockPointer root{footer.root_offset, footer.root_size};
  BlockCache::BlockHandle handle;
  Status s = tree_->ReadBlock(root, /*fill_cache=*/!sequential_, &handle);
  if (!s.ok()) {
    status_ = s;
    return;
  }
  levels_[0].handle = std::move(handle);
  levels_[0].cursor = std::make_unique<BlockCursor>(Slice(*levels_[0].handle));
  const bool seeking = !target.empty();
  if (seeking) {
    levels_[0].cursor->Seek(target);
  } else {
    levels_[0].cursor->SeekToFirst();
  }
  if (!levels_[0].cursor->Valid()) return;

  for (size_t i = 0; i + 1 < levels_.size(); i++) {
    if (!DescendFrom(i, seeking ? &target : nullptr)) return;
  }
  valid_ = true;
}

void TreeIterator::Next() {
  assert(valid_);
  Level& leaf = levels_.back();
  leaf.cursor->Next();
  if (leaf.cursor->Valid()) return;
  AdvanceLeaf();
}

void TreeIterator::AdvanceLeaf() {
  // Walk up to the deepest index level that can advance; then descend
  // leftmost back to the leaf.
  valid_ = false;
  if (levels_.size() < 2) return;
  size_t i = levels_.size() - 2;  // deepest index level
  while (true) {
    levels_[i].cursor->Next();
    if (levels_[i].cursor->Valid()) break;
    if (i == 0) return;  // root exhausted
    i--;
  }
  for (size_t j = i; j + 1 < levels_.size(); j++) {
    if (!DescendFrom(j, nullptr)) return;
  }
  valid_ = true;
}

Slice TreeIterator::key() const { return levels_.back().cursor->key(); }
Slice TreeIterator::value() const { return levels_.back().cursor->value(); }

}  // namespace blsm::sstree
