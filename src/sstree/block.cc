#include "sstree/block.h"

#include "lsm/record.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace blsm::sstree {

void BlockPointer::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset);
  PutVarint64(dst, size);
}

bool BlockPointer::DecodeFrom(Slice* input, BlockPointer* out) {
  return GetVarint64(input, &out->offset) && GetVarint64(input, &out->size);
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  PutLengthPrefixedSlice(&buffer_, key);
  PutLengthPrefixedSlice(&buffer_, value);
}

Status VerifyBlock(const Slice& raw, Slice* payload) {
  if (raw.size() < 4) return Status::Corruption("block too small");
  size_t payload_size = raw.size() - 4;
  uint32_t stored = crc32c::Unmask(DecodeFixed32(raw.data() + payload_size));
  uint32_t actual = crc32c::Value(raw.data(), payload_size);
  if (stored != actual) return Status::Corruption("block checksum mismatch");
  *payload = Slice(raw.data(), payload_size);
  return Status::OK();
}

void SealBlock(const Slice& payload, std::string* out) {
  out->assign(payload.data(), payload.size());
  PutFixed32(out, crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
}

void BlockCursor::SeekToFirst() {
  rest_ = payload_;
  valid_ = ParseNext();
}

bool BlockCursor::ParseNext() {
  if (rest_.empty()) return false;
  if (!GetLengthPrefixedSlice(&rest_, &key_)) return false;
  if (!GetLengthPrefixedSlice(&rest_, &value_)) return false;
  return true;
}

void BlockCursor::Next() { valid_ = ParseNext(); }

void BlockCursor::Seek(const Slice& target) {
  SeekToFirst();
  while (valid_ && CompareInternalKey(key_, target) < 0) {
    Next();
  }
}

}  // namespace blsm::sstree
