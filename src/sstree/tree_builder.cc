#include "sstree/tree_builder.h"

#include <cassert>

#include "bloom/bloom_filter.h"
#include "lsm/record.h"

namespace blsm::sstree {

TreeBuilder::TreeBuilder(Env* env, std::string fname,
                         TreeBuilderOptions options)
    : env_(env), fname_(std::move(fname)), options_(options) {}

TreeBuilder::~TreeBuilder() {
  // An error-path exit from Finish() can leave appends queued; they capture
  // file_ by raw pointer and must complete before it is destroyed.
  if (file_ != nullptr) {
    DrainAppends().IgnoreError("tearing down; Finish already reported");
  }
}

Status TreeBuilder::Open() { return env_->NewWritableFile(fname_, &file_); }

Status TreeBuilder::Add(const Slice& internal_key, const Slice& value) {
  assert(!finished_);
  assert(last_key_in_block_.empty() ||
         CompareInternalKey(last_key_in_block_, internal_key) < 0);

  if (smallest_.empty() && num_entries_ == 0) {
    smallest_.assign(internal_key.data(), internal_key.size());
  }
  largest_.assign(internal_key.data(), internal_key.size());

  data_block_.Add(internal_key, value);
  last_key_in_block_.assign(internal_key.data(), internal_key.size());
  num_entries_++;
  if (options_.build_bloom) {
    user_key_hashes_.push_back(
        BloomFilter::KeyHash(ExtractUserKey(internal_key)));
  }

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    return FlushDataBlock();
  }
  return Status::OK();
}

Status TreeBuilder::FlushDataBlock() {
  if (data_block_.empty()) return Status::OK();
  BlockPointer ptr;
  Status s = WriteBlock(data_block_.Finish(), &ptr);
  if (!s.ok()) return s;
  level0_index_.emplace_back(last_key_in_block_, ptr);
  data_block_.Reset();
  last_key_in_block_.clear();
  return Status::OK();
}

Status TreeBuilder::WriteBlock(const Slice& payload, BlockPointer* out) {
  std::string sealed;
  SealBlock(payload, &sealed);
  out->offset = offset_;
  out->size = sealed.size();
  return AppendSealed(std::move(sealed));
}

Status TreeBuilder::AppendSealed(std::string data) {
  offset_ += data.size();
  if (options_.append_executor != nullptr) {
    // The offset was claimed above, synchronously; the executor preserves
    // submission order per file, so the bytes land at exactly that offset
    // while this thread moves on to sealing the next block.
    return options_.append_executor->Submit(
        [file = file_.get(), payload = std::move(data)] {
          return file->Append(payload);
        });
  }
  return file_->Append(data);
}

Status TreeBuilder::DrainAppends() {
  if (options_.append_executor == nullptr) return Status::OK();
  return options_.append_executor->Drain();
}

Status TreeBuilder::Finish() {
  assert(!finished_);
  finished_ = true;
  Status s = FlushDataBlock();
  if (!s.ok()) return s;
  data_bytes_ = offset_;

  Footer footer;
  footer.num_entries = num_entries_;
  footer.data_bytes = data_bytes_;

  // Build index levels bottom-up until a single block remains.
  std::vector<std::pair<std::string, BlockPointer>> level = level0_index_;
  uint32_t levels = 0;
  if (!level.empty()) {
    while (true) {
      levels++;
      std::vector<std::pair<std::string, BlockPointer>> parent;
      BlockBuilder builder;
      std::string last_key;
      std::string encoded_ptr;
      size_t entries_in_block = 0;
      auto flush_index_block = [&]() -> Status {
        if (entries_in_block == 0) return Status::OK();
        BlockPointer ptr;
        Status st = WriteBlock(builder.Finish(), &ptr);
        if (!st.ok()) return st;
        parent.emplace_back(last_key, ptr);
        builder.Reset();
        entries_in_block = 0;
        return Status::OK();
      };
      for (const auto& [key, ptr] : level) {
        encoded_ptr.clear();
        ptr.EncodeTo(&encoded_ptr);
        builder.Add(key, encoded_ptr);
        last_key = key;
        entries_in_block++;
        if (builder.CurrentSizeEstimate() >= options_.block_size) {
          s = flush_index_block();
          if (!s.ok()) return s;
        }
      }
      s = flush_index_block();
      if (!s.ok()) return s;
      if (parent.size() == 1) {
        footer.root_offset = parent[0].second.offset;
        footer.root_size = parent[0].second.size;
        break;
      }
      level = std::move(parent);
    }
  }
  footer.index_levels = levels;

  // Bloom filter over user keys (§4.4.3): sized exactly from the tracked
  // key count so the false-positive rate stays below 1%.
  if (options_.build_bloom && !user_key_hashes_.empty()) {
    BloomFilter filter(user_key_hashes_.size(), options_.bloom_bits_per_key);
    for (uint64_t h : user_key_hashes_) filter.InsertHash(h);
    std::string encoded;
    filter.EncodeTo(&encoded);
    footer.bloom_offset = offset_;
    footer.bloom_size = encoded.size();
    s = AppendSealed(std::move(encoded));
    if (!s.ok()) return s;
  }

  std::string footer_bytes;
  footer.EncodeTo(&footer_bytes);
  s = AppendSealed(std::move(footer_bytes));
  if (!s.ok()) return s;

  // Every queued append must have hit the file before it is made durable.
  s = DrainAppends();
  if (!s.ok()) return s;

  if (options_.sync_on_finish) {
    s = file_->Sync();
    if (!s.ok()) return s;
  }
  return file_->Close();
}

void TreeBuilder::Abandon() {
  finished_ = true;
  if (file_ != nullptr) {
    // Queued appends hold a raw pointer to the file; they must run (or
    // fail) before the file can be closed out from under them.
    DrainAppends().IgnoreError(
        "abandoned output is deleted by the caller either way");
    file_->Close().IgnoreError(
        "abandoned output is deleted by the caller either way");
    file_.reset();
  }
}

}  // namespace blsm::sstree
