#ifndef BLSM_SSTREE_TREE_FORMAT_H_
#define BLSM_SSTREE_TREE_FORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"
#include "util/status.h"

namespace blsm::sstree {

// On-disk layout of a tree component (an append-only B-tree, Figure 1's C1
// or C2):
//
//   [data block]*            -- records, written in key order
//   [index block, level 1]*  -- (last key of child, pointer) per data block
//   [index block, level 2]*  -- ... repeated until one root block ...
//   [bloom filter]           -- serialized BloomFilter over user keys
//   [footer]                 -- fixed-size locator, written last
//
// The file is written strictly append-only: merges stream data blocks out,
// then emit the index bottom-up, the Bloom filter, and the footer. A
// component is valid iff its footer is intact, so a crash mid-build leaves a
// garbage file that recovery simply deletes (it is not yet in the manifest).
struct Footer {
  static constexpr uint64_t kMagic = 0xb15a7ee0f00dull;
  static constexpr size_t kEncodedLength = 8 * 7 + 4;

  uint64_t root_offset = 0;
  uint64_t root_size = 0;
  uint32_t index_levels = 0;  // 0 => empty tree (no blocks at all)
  uint64_t bloom_offset = 0;
  uint64_t bloom_size = 0;
  uint64_t num_entries = 0;
  uint64_t data_bytes = 0;  // total size of the data-block region

  void EncodeTo(std::string* dst) const {
    PutFixed64(dst, root_offset);
    PutFixed64(dst, root_size);
    PutFixed32(dst, index_levels);
    PutFixed64(dst, bloom_offset);
    PutFixed64(dst, bloom_size);
    PutFixed64(dst, num_entries);
    PutFixed64(dst, data_bytes);
    PutFixed64(dst, kMagic);
  }

  Status DecodeFrom(Slice input) {
    if (input.size() < kEncodedLength) {
      return Status::Corruption("footer too short");
    }
    GetFixed64(&input, &root_offset);
    GetFixed64(&input, &root_size);
    GetFixed32(&input, &index_levels);
    GetFixed64(&input, &bloom_offset);
    GetFixed64(&input, &bloom_size);
    GetFixed64(&input, &num_entries);
    GetFixed64(&input, &data_bytes);
    uint64_t magic;
    GetFixed64(&input, &magic);
    if (magic != kMagic) return Status::Corruption("bad tree footer magic");
    return Status::OK();
  }
};

}  // namespace blsm::sstree

#endif  // BLSM_SSTREE_TREE_FORMAT_H_
