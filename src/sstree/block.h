#ifndef BLSM_SSTREE_BLOCK_H_
#define BLSM_SSTREE_BLOCK_H_

#include <memory>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace blsm::sstree {

// Blocks are the unit of I/O and caching for on-disk tree components. A
// block is a packed sequence of entries
//   varint32 key_len | key | varint32 value_len | value
// followed by a 4-byte masked CRC32C when stored on disk. Data blocks hold
// (internal key, record value) pairs; index blocks hold
// (last internal key of child, child BlockPointer) pairs.
//
// Entries are small relative to the 4 KiB block (Appendix A.2 argues for
// 4 KiB pages), so in-block Seek is a linear scan — no restart array needed.

// Location of a block within its file.
struct BlockPointer {
  uint64_t offset = 0;
  uint64_t size = 0;  // payload + CRC

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, BlockPointer* out);
};

// Builds one block in memory.
class BlockBuilder {
 public:
  BlockBuilder() = default;

  // Keys must be added in increasing order.
  void Add(const Slice& key, const Slice& value);

  bool empty() const { return buffer_.empty(); }
  size_t CurrentSizeEstimate() const { return buffer_.size(); }

  // Returns the payload (no CRC; the writer appends it).
  Slice Finish() { return Slice(buffer_); }
  void Reset() { buffer_.clear(); }

 private:
  std::string buffer_;
};

// Verifies and strips the CRC of an on-disk block. `raw` is the block as
// read from disk; on success *payload receives the entry region (pointing
// into raw).
Status VerifyBlock(const Slice& raw, Slice* payload);

// Appends the CRC to a finished payload, producing the on-disk form.
void SealBlock(const Slice& payload, std::string* out);

// Iterates a block payload. The payload must outlive the cursor (readers
// hold the cache handle).
class BlockCursor {
 public:
  explicit BlockCursor(Slice payload) : payload_(payload) { SeekToFirst(); }

  bool Valid() const { return valid_; }
  void SeekToFirst();
  // Positions at the first entry with key >= target (internal key order).
  void Seek(const Slice& target);
  void Next();

  Slice key() const { return key_; }
  Slice value() const { return value_; }

 private:
  bool ParseNext();

  Slice payload_;
  Slice rest_;
  Slice key_;
  Slice value_;
  bool valid_ = false;
};

}  // namespace blsm::sstree

#endif  // BLSM_SSTREE_BLOCK_H_
