#ifndef BLSM_SSTREE_TREE_READER_H_
#define BLSM_SSTREE_TREE_READER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bloom/bloom_filter.h"
#include "buffer/block_cache.h"
#include "io/env.h"
#include "lsm/record.h"
#include "sstree/block.h"
#include "sstree/tree_format.h"

namespace blsm::sstree {

class TreeIterator;

// Read side of an on-disk tree component. Immutable once opened; safe for
// concurrent readers. Point lookups consult the component's Bloom filter
// first (zero I/O on a negative), then descend the index through the shared
// block cache — with indexes cached, one seek per lookup (§3.1.1).
class TreeReader {
 public:
  // `file_id` keys this component's blocks in the shared cache; `cache` may
  // be nullptr (every read goes to the file — used to measure cold-cache
  // seek counts).
  static Status Open(Env* env, BlockCache* cache, uint64_t file_id,
                     const std::string& fname,
                     std::unique_ptr<TreeReader>* out);

  ~TreeReader();
  TreeReader(const TreeReader&) = delete;
  TreeReader& operator=(const TreeReader&) = delete;

  struct GetResult {
    RecordType type;
    std::string value;
    SequenceNumber seq;
  };

  // Returns the newest record for user_key, or nullopt. `*io_status` (if
  // non-null) receives any I/O error. use_bloom=false is the ablation knob.
  std::optional<GetResult> Get(const Slice& user_key, bool use_bloom,
                               Status* io_status = nullptr) const;

  // Batched point lookups: results[i] / io_statuses->at(i) correspond to
  // user_keys[i]. `user_keys` must be ascending (duplicates allowed); the
  // batch reuses the most recently decoded data block, so adjacent keys
  // landing in the same block decode it once (`*blocks_coalesced`, if
  // non-null, counts those reuses) and a key past the component's largest
  // short-circuits the rest of the batch. Bloom filtering is the caller's
  // job: every key given here descends the index.
  std::vector<std::optional<GetResult>> MultiGet(
      const std::vector<Slice>& user_keys, std::vector<Status>* io_statuses,
      uint64_t* blocks_coalesced = nullptr) const;

  // True if the Bloom filter admits the key (or there is no filter). This is
  // the §3.1.2 "insert if not exists" fast path: all-negative filters prove
  // absence with zero seeks.
  bool MayContain(const Slice& user_key) const;

  // `sequential` iterators bypass the block cache and are intended for
  // merges and long scans: they read blocks in file order, which the I/O
  // accounting (correctly) treats as sequential bandwidth rather than seeks.
  // `scan_readahead_bytes` caps the readahead-hint window of non-sequential
  // iterators; 0 (the default) disables their hints entirely. Sequential
  // iterators ignore it and always hint at the full merge window.
  std::unique_ptr<TreeIterator> NewIterator(
      bool sequential = false, uint64_t scan_readahead_bytes = 0) const;

  uint64_t num_entries() const { return footer_.num_entries; }
  uint64_t data_bytes() const { return footer_.data_bytes; }
  uint64_t file_size() const { return file_size_; }
  uint64_t file_id() const { return file_id_; }
  bool has_bloom() const { return bloom_ != nullptr; }
  const Footer& footer() const { return footer_; }

  // Reads (and caches) the block at `ptr`; exposed for the iterator.
  // Checksum failures come back as Corruption naming this component's file
  // and the block's offset, so the damage is actionable from any read path.
  Status ReadBlock(const BlockPointer& ptr, bool fill_cache,
                   BlockCache::BlockHandle* out) const;

  // Advisory prefetch passthrough to the underlying file (iterator
  // readahead). Never fails; a no-op on environments without it.
  void HintReadAhead(uint64_t offset, uint64_t len) const {
    file_->ReadAheadHint(offset, len);
  }

  // Offline/paranoid verification: reads and checksums every reachable
  // block — the index levels, every data block, and the Bloom filter —
  // bypassing the cache, and cross-checks the record count against the
  // footer (whose fields have no checksum of their own). On failure returns
  // the error (Corruption for a bad checksum) and, if `bad_offset` is
  // non-null, the file offset of the first damaged block.
  Status VerifyAllBlocks(uint64_t* bad_offset = nullptr) const;

 private:
  TreeReader() = default;

  // Recursive descent for VerifyAllBlocks: `depth` counts index levels
  // consumed so far; at depth == footer_.index_levels the block is data,
  // its records are tallied into `entries`, and `data_end` tracks the
  // furthest data-block end seen.
  Status VerifyBlockAt(const BlockPointer& ptr, uint32_t depth,
                       uint64_t* bad_offset, uint64_t* entries,
                       uint64_t* data_end) const;

  Env* env_ = nullptr;
  BlockCache* cache_ = nullptr;
  uint64_t file_id_ = 0;
  uint64_t file_size_ = 0;
  std::string fname_;
  std::unique_ptr<RandomAccessFile> file_;
  Footer footer_;
  std::unique_ptr<BloomFilter> bloom_;
};

// Forward iterator over a component in internal-key order, descending the
// multi-level index with one cursor per level.
class TreeIterator {
 public:
  TreeIterator(const TreeReader* tree, bool sequential,
               uint64_t scan_readahead_bytes);

  bool Valid() const { return valid_; }
  void SeekToFirst();
  void Seek(const Slice& internal_key_target);
  void Next();

  Slice key() const;    // internal key
  Slice value() const;

  Status status() const { return status_; }

 private:
  struct Level {
    BlockCache::BlockHandle handle;
    std::unique_ptr<BlockCursor> cursor;
  };

  // Loads the child block pointed to by levels_[i]'s current entry into
  // levels_[i+1].
  bool DescendFrom(size_t i, const Slice* seek_target);
  // Advances the deepest advanceable ancestor and re-descends.
  void AdvanceLeaf();

  const TreeReader* tree_;
  bool sequential_;
  std::vector<Level> levels_;  // [0] = root ... back() = data block
  bool valid_ = false;
  Status status_;
  // Data blocks sit contiguously from offset 0 in build order, so "the next
  // blocks in the file" are exactly the blocks this iterator will visit
  // next. Each time the traversal catches up with the hinted frontier, the
  // next chunk is hinted. The window auto-scales: a fresh non-sequential
  // iterator hints nothing on its first data block (a seek proves no
  // intent to keep reading — and a multilevel scan seeks one iterator per
  // run, most of which are read once or never), then doubles the window on
  // each continued traversal up to the cap. Merge inputs (sequential_)
  // start at the cap: they always read to the end. For non-sequential
  // iterators the cap is the per-scan ReadOptions::readahead_bytes knob;
  // its default of 0 keeps scan hints off (see EXPERIMENTS.md §5.6: on
  // buffered storage each hint is a net loss).
  uint64_t scan_readahead_cap_ = 0;
  uint64_t readahead_until_ = 0;
  uint64_t readahead_bytes_ = 0;  // 0 = not armed yet
};

}  // namespace blsm::sstree

#endif  // BLSM_SSTREE_TREE_READER_H_
