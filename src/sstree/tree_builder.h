#ifndef BLSM_SSTREE_TREE_BUILDER_H_
#define BLSM_SSTREE_TREE_BUILDER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "io/env.h"
#include "sstree/block.h"
#include "sstree/tree_format.h"

namespace blsm::sstree {

// Deferred-execution sink for builder file appends. An implementation runs
// submitted tasks asynchronously but IN SUBMISSION ORDER with respect to any
// one file (the builder relies on that: block offsets are assigned at
// enqueue time, so reordered appends would interleave the file). Submit may
// block for backpressure; after any task fails, Submit fails fast with the
// first error and drops the new task. Drain blocks until everything
// submitted has run and returns the first error.
//
// The interface lives here (not in the engine layer) so sstree stays free
// of engine dependencies; engine::BackgroundRunner::TaskPipeline is the
// production implementation.
class AppendExecutor {
 public:
  virtual ~AppendExecutor() = default;
  virtual Status Submit(std::function<Status()> task) = 0;
  virtual Status Drain() = 0;
};

struct TreeBuilderOptions {
  size_t block_size = 4096;        // Appendix A.2: 4 KiB data pages
  double bloom_bits_per_key = 10;  // <1% false positives (§4.4.3)
  bool build_bloom = true;
  bool sync_on_finish = true;
  // When set, sealed blocks are handed to this executor instead of being
  // Append()ed inline, overlapping the builder's compute (sorting the next
  // block, checksumming) with file IO. Offsets are assigned at submission,
  // so the executor must preserve per-file submission order. The builder
  // drains before Sync/Close and before Abandon. Not owned.
  AppendExecutor* append_executor = nullptr;
};

// Streams sorted records into a new on-disk tree component. Records must be
// Add()ed in strictly increasing internal-key order (merges produce exactly
// that). Single-threaded: one builder per merge.
class TreeBuilder {
 public:
  TreeBuilder(Env* env, std::string fname, TreeBuilderOptions options);
  ~TreeBuilder();
  TreeBuilder(const TreeBuilder&) = delete;
  TreeBuilder& operator=(const TreeBuilder&) = delete;

  // Must be called once before Add.
  Status Open();

  Status Add(const Slice& internal_key, const Slice& value);

  // Writes index levels, Bloom filter and footer. No Adds may follow.
  Status Finish();

  // Abandons the build; the caller deletes the file.
  void Abandon();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t file_size() const { return offset_; }
  const std::string& smallest_key() const { return smallest_; }
  const std::string& largest_key() const { return largest_; }

 private:
  Status FlushDataBlock();
  Status WriteBlock(const Slice& payload, BlockPointer* out);
  // Appends `data` at the current offset, inline or via the executor.
  Status AppendSealed(std::string data);
  // Waits out the executor's queue (no-op without one).
  Status DrainAppends();

  Env* env_;
  std::string fname_;
  TreeBuilderOptions options_;
  std::unique_ptr<WritableFile> file_;

  BlockBuilder data_block_;
  std::string last_key_in_block_;
  std::vector<std::pair<std::string, BlockPointer>> level0_index_;
  std::vector<uint64_t> user_key_hashes_;  // for the Bloom filter
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  uint64_t data_bytes_ = 0;
  std::string smallest_;
  std::string largest_;
  bool finished_ = false;
};

}  // namespace blsm::sstree

#endif  // BLSM_SSTREE_TREE_BUILDER_H_
