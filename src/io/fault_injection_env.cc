#include "io/fault_injection_env.h"

namespace blsm {

namespace {

class FaultSequentialFile final : public SequentialFile {
 public:
  FaultSequentialFile(std::unique_ptr<SequentialFile> base,
                      FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = env_->Check();
    if (!s.ok()) return s;
    return base_->Read(n, result, scratch);
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  FaultInjectionEnv* env_;
};

class FaultRandomAccessFile final : public RandomAccessFile {
 public:
  FaultRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                        FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = env_->Check();
    if (!s.ok()) return s;
    return base_->Read(offset, n, result, scratch);
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FaultInjectionEnv* env_;
};

class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    Status s = env_->Check();
    if (!s.ok()) return s;
    return base_->Append(data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    Status s = env_->Check();
    if (!s.ok()) return s;
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

class FaultRandomRWFile final : public RandomRWFile {
 public:
  FaultRandomRWFile(std::unique_ptr<RandomRWFile> base, FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = env_->Check();
    if (!s.ok()) return s;
    return base_->Read(offset, n, result, scratch);
  }
  Status Write(uint64_t offset, const Slice& data) override {
    Status s = env_->Check();
    if (!s.ok()) return s;
    return base_->Write(offset, data);
  }
  Status Sync() override {
    Status s = env_->Check();
    if (!s.ok()) return s;
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RandomRWFile> base_;
  FaultInjectionEnv* env_;
};

}  // namespace

Status FaultInjectionEnv::Check() {
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  if (remaining_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected fault");
  }
  return Status::OK();
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  Status s = Check();
  if (!s.ok()) return s;
  std::unique_ptr<SequentialFile> base;
  s = base_->NewSequentialFile(fname, &base);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultSequentialFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  Status s = Check();
  if (!s.ok()) return s;
  std::unique_ptr<RandomAccessFile> base;
  s = base_->NewRandomAccessFile(fname, &base);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultRandomAccessFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  Status s = Check();
  if (!s.ok()) return s;
  std::unique_ptr<WritableFile> base;
  s = base_->NewWritableFile(fname, &base);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultWritableFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomRWFile(
    const std::string& fname, std::unique_ptr<RandomRWFile>* result) {
  Status s = Check();
  if (!s.ok()) return s;
  std::unique_ptr<RandomRWFile> base;
  s = base_->NewRandomRWFile(fname, &base);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultRandomRWFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  Status s = Check();
  if (!s.ok()) return s;
  return base_->RenameFile(src, target);
}

}  // namespace blsm
