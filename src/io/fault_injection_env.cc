#include "io/fault_injection_env.h"

namespace blsm {

namespace {

class FaultSequentialFile final : public SequentialFile {
 public:
  FaultSequentialFile(std::unique_ptr<SequentialFile> base,
                      FaultInjectionEnv* env, std::string fname)
      : base_(std::move(base)), env_(env), fname_(std::move(fname)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = env_->CheckOp(FaultOpClass::kRead, fname_);
    if (!s.ok()) return s;
    return base_->Read(n, result, scratch);
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  FaultInjectionEnv* env_;
  std::string fname_;
};

class FaultRandomAccessFile final : public RandomAccessFile {
 public:
  FaultRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                        FaultInjectionEnv* env, std::string fname)
      : base_(std::move(base)), env_(env), fname_(std::move(fname)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = env_->CheckOp(FaultOpClass::kRead, fname_);
    if (!s.ok()) return s;
    return base_->Read(offset, n, result, scratch);
  }

  Status MultiRead(ReadRequest* reqs, size_t n) const override {
    // Each sub-read rolls the fault dice on its own; a faulted request
    // carries its injected error while the survivors still go down as one
    // batch. This is the contract MultiRead callers rely on: one bad block
    // never poisons its batchmates.
    std::vector<size_t> healthy;
    healthy.reserve(n);
    for (size_t i = 0; i < n; i++) {
      Status s = env_->CheckOp(FaultOpClass::kRead, fname_);
      if (s.ok()) {
        healthy.push_back(i);
      } else {
        reqs[i].status = s;
        reqs[i].result = Slice();
      }
    }
    if (healthy.empty()) return Status::OK();
    std::vector<ReadRequest> sub(healthy.size());
    for (size_t i = 0; i < healthy.size(); i++) {
      sub[i].offset = reqs[healthy[i]].offset;
      sub[i].len = reqs[healthy[i]].len;
      sub[i].scratch = reqs[healthy[i]].scratch;
    }
    Status batch = base_->MultiRead(sub.data(), sub.size());
    if (!batch.ok()) return batch;
    for (size_t i = 0; i < healthy.size(); i++) {
      reqs[healthy[i]].result = sub[i].result;
      reqs[healthy[i]].status = sub[i].status;
    }
    return Status::OK();
  }

  void ReadAheadHint(uint64_t offset, uint64_t len) const override {
    // Advisory and infallible by contract: nothing to inject.
    base_->ReadAheadHint(offset, len);
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FaultInjectionEnv* env_;
  std::string fname_;
};

class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, FaultInjectionEnv* env,
                    std::string fname)
      : base_(std::move(base)), env_(env), fname_(std::move(fname)) {}

  Status Append(const Slice& data) override {
    FaultInjectionEnv::WritePlan plan = env_->PlanAppend(fname_, data.size());
    if (!plan.status.ok()) {
      if (plan.torn_len > 0) {
        // Torn write: the device persisted part of the payload before the
        // failure. The base Append's own status is irrelevant — the caller
        // already sees an error.
        base_->Append(Slice(data.data(), plan.torn_len))
            .IgnoreError("the injected IOError below is what the caller "
                         "must see, whatever the partial write did");
      }
      return plan.status;
    }
    if (plan.flip_bit >= 0) {
      std::string corrupted(data.data(), data.size());
      corrupted[static_cast<size_t>(plan.flip_bit) / 8] ^=
          static_cast<char>(1u << (plan.flip_bit % 8));
      return base_->Append(corrupted);
    }
    return base_->Append(data);
  }
  // AppendV deliberately stays the base-class Append loop: each part must
  // roll PlanAppend individually so torn-write/bit-flip coverage is
  // per-fragment, exactly as if the caller had Append()ed them.
  size_t PreferredAppendAlignment() const override {
    return base_->PreferredAppendAlignment();
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    FaultInjectionEnv::SyncPlan plan = env_->PlanSync(fname_);
    if (!plan.status.ok()) return plan.status;
    if (plan.swallow) return Status::OK();  // the lie: "it's durable"
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
  std::string fname_;
};

class FaultRandomRWFile final : public RandomRWFile {
 public:
  FaultRandomRWFile(std::unique_ptr<RandomRWFile> base, FaultInjectionEnv* env,
                    std::string fname)
      : base_(std::move(base)), env_(env), fname_(std::move(fname)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = env_->CheckOp(FaultOpClass::kRead, fname_);
    if (!s.ok()) return s;
    return base_->Read(offset, n, result, scratch);
  }
  Status Write(uint64_t offset, const Slice& data) override {
    Status s = env_->CheckOp(FaultOpClass::kWrite, fname_);
    if (!s.ok()) return s;
    return base_->Write(offset, data);
  }
  Status Sync() override {
    FaultInjectionEnv::SyncPlan plan = env_->PlanSync(fname_);
    if (!plan.status.ok()) return plan.status;
    if (plan.swallow) return Status::OK();
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RandomRWFile> base_;
  FaultInjectionEnv* env_;
  std::string fname_;
};

}  // namespace

void FaultInjectionEnv::SetPolicy(const FaultPolicy& policy) {
  util::MutexLock l(&policy_mu_);
  policy_ = policy;
  rng_ = Random(policy.seed);
  policy_active_.store(policy.AnyProbabilistic(), std::memory_order_release);
}

void FaultInjectionEnv::Heal() {
  armed_.store(false, std::memory_order_relaxed);
  util::MutexLock l(&policy_mu_);
  policy_ = FaultPolicy{};
  policy_active_.store(false, std::memory_order_release);
}

Status FaultInjectionEnv::Check() {
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  if (remaining_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected fault");
  }
  return Status::OK();
}

bool FaultInjectionEnv::Roll(double prob) {
  if (prob <= 0.0) return false;
  util::MutexLock l(&policy_mu_);
  return rng_.NextDouble() < prob;
}

bool FaultInjectionEnv::SilentFaultsApply(const std::string& fname) {
  std::function<bool(const std::string&)> filter;
  {
    util::MutexLock l(&policy_mu_);
    filter = policy_.silent_fault_filter;
  }
  return filter == nullptr || filter(fname);
}

Status FaultInjectionEnv::CheckOp(FaultOpClass op, const std::string& fname) {
  Status s = Check();
  if (!s.ok()) return s;
  if (!policy_active_.load(std::memory_order_acquire)) return Status::OK();
  double prob = 0.0;
  {
    util::MutexLock l(&policy_mu_);
    switch (op) {
      case FaultOpClass::kRead:
        prob = policy_.read_error_prob;
        break;
      case FaultOpClass::kWrite:
        prob = policy_.write_error_prob;
        break;
      case FaultOpClass::kSync:
        prob = policy_.sync_error_prob;
        break;
      case FaultOpClass::kOpen:
        prob = policy_.open_error_prob;
        break;
      case FaultOpClass::kMetadata:
        prob = policy_.metadata_error_prob;
        break;
    }
    if (prob <= 0.0 || rng_.NextDouble() >= prob) return Status::OK();
  }
  faults_.fetch_add(1, std::memory_order_relaxed);
  return Status::IOError("injected fault: " + fname);
}

FaultInjectionEnv::WritePlan FaultInjectionEnv::PlanAppend(
    const std::string& fname, size_t len) {
  WritePlan plan;
  plan.status = Check();
  if (!plan.status.ok()) return plan;
  if (!policy_active_.load(std::memory_order_acquire)) return plan;

  // Manual lock discipline: every branch drops policy_mu_ before the
  // fetch_add / filter callback so the dice rolls stay serialized but no
  // side effect runs under the lock.
  policy_mu_.Lock();
  if (policy_.write_error_prob > 0 &&
      rng_.NextDouble() < policy_.write_error_prob) {
    policy_mu_.Unlock();
    faults_.fetch_add(1, std::memory_order_relaxed);
    plan.status = Status::IOError("injected write error: " + fname);
    return plan;
  }
  if (len > 0 && policy_.torn_write_prob > 0 &&
      rng_.NextDouble() < policy_.torn_write_prob) {
    plan.torn_len = static_cast<size_t>(rng_.Uniform(len));  // strict prefix
    policy_mu_.Unlock();
    faults_.fetch_add(1, std::memory_order_relaxed);
    torn_writes_.fetch_add(1, std::memory_order_relaxed);
    plan.status = Status::IOError("injected torn write: " + fname);
    return plan;
  }
  if (len > 0 && policy_.bit_flip_prob > 0 &&
      rng_.NextDouble() < policy_.bit_flip_prob) {
    uint64_t bit = rng_.Uniform(len * 8);
    policy_mu_.Unlock();
    if (SilentFaultsApply(fname)) {
      bit_flips_.fetch_add(1, std::memory_order_relaxed);
      plan.flip_bit = static_cast<int64_t>(bit);
    }
    return plan;
  }
  policy_mu_.Unlock();
  return plan;
}

FaultInjectionEnv::SyncPlan FaultInjectionEnv::PlanSync(
    const std::string& fname) {
  SyncPlan plan;
  plan.status = Check();
  if (!plan.status.ok()) return plan;
  if (!policy_active_.load(std::memory_order_acquire)) return plan;

  policy_mu_.Lock();
  if (policy_.sync_error_prob > 0 &&
      rng_.NextDouble() < policy_.sync_error_prob) {
    policy_mu_.Unlock();
    faults_.fetch_add(1, std::memory_order_relaxed);
    plan.status = Status::IOError("injected sync error: " + fname);
    return plan;
  }
  if (policy_.swallow_sync_prob > 0 &&
      rng_.NextDouble() < policy_.swallow_sync_prob) {
    policy_mu_.Unlock();
    if (SilentFaultsApply(fname)) {
      swallowed_syncs_.fetch_add(1, std::memory_order_relaxed);
      plan.swallow = true;
    }
    return plan;
  }
  policy_mu_.Unlock();
  return plan;
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  Status s = CheckOp(FaultOpClass::kOpen, fname);
  if (!s.ok()) return s;
  std::unique_ptr<SequentialFile> base;
  s = base_->NewSequentialFile(fname, &base);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultSequentialFile>(std::move(base), this, fname);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  Status s = CheckOp(FaultOpClass::kOpen, fname);
  if (!s.ok()) return s;
  std::unique_ptr<RandomAccessFile> base;
  s = base_->NewRandomAccessFile(fname, &base);
  if (!s.ok()) return s;
  *result =
      std::make_unique<FaultRandomAccessFile>(std::move(base), this, fname);
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  Status s = CheckOp(FaultOpClass::kOpen, fname);
  if (!s.ok()) return s;
  std::unique_ptr<WritableFile> base;
  s = base_->NewWritableFile(fname, &base);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultWritableFile>(std::move(base), this, fname);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomRWFile(
    const std::string& fname, std::unique_ptr<RandomRWFile>* result) {
  Status s = CheckOp(FaultOpClass::kOpen, fname);
  if (!s.ok()) return s;
  std::unique_ptr<RandomRWFile> base;
  s = base_->NewRandomRWFile(fname, &base);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultRandomRWFile>(std::move(base), this, fname);
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  // A tripped device must refuse deletes too: recovery code paths depend on
  // unlink actually happening, and a silent no-op would leak orphans.
  Status s = CheckOp(FaultOpClass::kMetadata, fname);
  if (!s.ok()) return s;
  return base_->RemoveFile(fname);
}

Status FaultInjectionEnv::CreateDir(const std::string& dirname) {
  Status s = CheckOp(FaultOpClass::kMetadata, dirname);
  if (!s.ok()) return s;
  return base_->CreateDir(dirname);
}

Status FaultInjectionEnv::RemoveDir(const std::string& dirname) {
  Status s = CheckOp(FaultOpClass::kMetadata, dirname);
  if (!s.ok()) return s;
  return base_->RemoveDir(dirname);
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  Status s = CheckOp(FaultOpClass::kMetadata, src);
  if (!s.ok()) return s;
  return base_->RenameFile(src, target);
}

}  // namespace blsm
