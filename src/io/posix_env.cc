#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "io/env.h"

namespace blsm {

namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) {
    return Status::NotFound(context + ": " + strerror(err));
  }
  return Status::IOError(context + ": " + strerror(err));
}

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixSequentialFile() override { close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ssize_t r = read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (lseek(fd_, static_cast<off_t>(n), SEEK_CUR) == -1) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixRandomAccessFile() override { close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ssize_t r = pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError(fname_, errno);
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {
    buf_.reserve(kBufferSize);
  }
  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      Close().IgnoreError("destructor has no caller to report to");
    }
  }

  Status Append(const Slice& data) override {
    if (buf_.size() + data.size() <= kBufferSize) {
      buf_.append(data.data(), data.size());
      return Status::OK();
    }
    Status s = FlushBuffered();
    if (!s.ok()) return s;
    if (data.size() <= kBufferSize) {
      buf_.append(data.data(), data.size());
      return Status::OK();
    }
    return WriteRaw(data.data(), data.size());
  }

  Status Flush() override { return FlushBuffered(); }

  Status Sync() override {
    Status s = FlushBuffered();
    if (!s.ok()) return s;
    if (fdatasync(fd_) != 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    Status s = FlushBuffered();
    if (close(fd_) != 0 && s.ok()) s = PosixError(fname_, errno);
    fd_ = -1;
    return s;
  }

 private:
  static constexpr size_t kBufferSize = 64 << 10;

  Status FlushBuffered() {
    Status s = Status::OK();
    if (!buf_.empty()) {
      s = WriteRaw(buf_.data(), buf_.size());
      buf_.clear();
    }
    return s;
  }

  Status WriteRaw(const char* p, size_t n) {
    while (n > 0) {
      ssize_t r = write(fd_, p, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += r;
      n -= static_cast<size_t>(r);
    }
    return Status::OK();
  }

  std::string fname_;
  int fd_;
  std::string buf_;
};

class PosixRandomRWFile final : public RandomRWFile {
 public:
  PosixRandomRWFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixRandomRWFile() override {
    if (fd_ >= 0) close(fd_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ssize_t r = pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError(fname_, errno);
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override {
    const char* p = data.data();
    size_t n = data.size();
    off_t off = static_cast<off_t>(offset);
    while (n > 0) {
      ssize_t r = pwrite(fd_, p, n, off);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += r;
      off += r;
      n -= static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fdatasync(fd_) != 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (close(fd_) != 0) {
      fd_ = -1;
      return PosixError(fname_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixSequentialFile>(fname, fd);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixRandomAccessFile>(fname, fd);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd =
        open(fname.c_str(), O_TRUNC | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixWritableFile>(fname, fd);
    return Status::OK();
  }

  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override {
    int fd = open(fname.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixRandomRWFile>(fname, fd);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) return PosixError(dir, errno);
    struct dirent* entry;
    while ((entry = readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") result->push_back(name);
    }
    closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (unlink(fname.c_str()) != 0) return PosixError(fname, errno);
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    if (rmdir(dirname.c_str()) != 0) return PosixError(dirname, errno);
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct stat st;
    if (stat(fname.c_str(), &st) != 0) {
      *size = 0;
      return PosixError(fname, errno);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    if (rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }

  uint64_t NowMicros() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void SleepForMicroseconds(uint64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

}  // namespace

Env* Env::Default() {
  // Never destroyed: avoids shutdown-order problems (style-guide pattern).
  static Env* env = new PosixEnv();
  return env;
}

}  // namespace blsm
