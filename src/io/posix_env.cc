#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "io/env.h"

namespace blsm {

namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) {
    return Status::NotFound(context + ": " + strerror(err));
  }
  return Status::IOError(context + ": " + strerror(err));
}

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd, EnvIoCounters* counters)
      : fname_(std::move(fname)), fd_(fd), counters_(counters) {}
  ~PosixSequentialFile() override { close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ssize_t r = read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      counters_->read_bytes.fetch_add(static_cast<uint64_t>(r),
                                      std::memory_order_relaxed);
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (lseek(fd_, static_cast<off_t>(n), SEEK_CUR) == -1) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
  EnvIoCounters* counters_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd, EnvIoCounters* counters)
      : fname_(std::move(fname)), fd_(fd), counters_(counters) {}
  ~PosixRandomAccessFile() override { close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ssize_t r = pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError(fname_, errno);
    tracker_.OnRead(offset, counters_);
    counters_->read_bytes.fetch_add(static_cast<uint64_t>(r),
                                    std::memory_order_relaxed);
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  // Batched path: maximal runs of contiguous requests collapse into one
  // preadv each, so a MultiGet whose target blocks are adjacent on disk
  // costs one syscall instead of one per block. Non-contiguous requests
  // fall back to individual preads; per-request statuses throughout.
  Status MultiRead(ReadRequest* reqs, size_t n) const override {
    counters_->multiread_batches.fetch_add(1, std::memory_order_relaxed);
    counters_->multiread_requests.fetch_add(n, std::memory_order_relaxed);
    constexpr size_t kMaxIov = 64;
    size_t i = 0;
    while (i < n) {
      size_t j = i + 1;
      while (j < n && j - i < kMaxIov &&
             reqs[j].offset == reqs[j - 1].offset + reqs[j - 1].len) {
        j++;
      }
      if (j - i == 1) {
        reqs[i].status = Read(reqs[i].offset, reqs[i].len, &reqs[i].result,
                              reqs[i].scratch);
      } else {
        ReadRun(&reqs[i], j - i);
      }
      i = j;
    }
    return Status::OK();
  }

  void ReadAheadHint(uint64_t offset, uint64_t len) const override {
#if defined(POSIX_FADV_WILLNEED)
    posix_fadvise(fd_, static_cast<off_t>(offset), static_cast<off_t>(len),
                  POSIX_FADV_WILLNEED);
#endif
    tracker_.Hint(offset, len, counters_);
  }

 private:
  // One preadv over a contiguous run. A short count (EOF or a signal) falls
  // back to per-request reads for the unfinished tail, so the results are
  // bit-identical to the one-pread-at-a-time path.
  void ReadRun(ReadRequest* reqs, size_t count) const {
    struct iovec iov[64];
    size_t total = 0;
    for (size_t k = 0; k < count; k++) {
      iov[k].iov_base = reqs[k].scratch;
      iov[k].iov_len = reqs[k].len;
      total += reqs[k].len;
    }
    ssize_t r;
    do {
      r = preadv(fd_, iov, static_cast<int>(count),
                 static_cast<off_t>(reqs[0].offset));
    } while (r < 0 && errno == EINTR);
    if (r < 0) {
      Status s = PosixError(fname_, errno);
      for (size_t k = 0; k < count; k++) reqs[k].status = s;
      return;
    }
    tracker_.OnRead(reqs[0].offset, counters_);
    counters_->read_bytes.fetch_add(static_cast<uint64_t>(r),
                                    std::memory_order_relaxed);
    size_t got = static_cast<size_t>(r);
    size_t k = 0;
    for (; k < count && got >= reqs[k].len; k++) {
      reqs[k].result = Slice(reqs[k].scratch, reqs[k].len);
      reqs[k].status = Status::OK();
      got -= reqs[k].len;
    }
    for (; k < count; k++) {
      reqs[k].status = Read(reqs[k].offset, reqs[k].len, &reqs[k].result,
                            reqs[k].scratch);
    }
  }

  std::string fname_;
  int fd_;
  EnvIoCounters* counters_;
  mutable ReadAheadTracker tracker_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd, EnvIoCounters* counters)
      : fname_(std::move(fname)), fd_(fd), counters_(counters) {
    buf_.reserve(kBufferSize);
  }
  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      Close().IgnoreError("destructor has no caller to report to");
    }
  }

  Status Append(const Slice& data) override {
    counters_->write_bytes.fetch_add(data.size(), std::memory_order_relaxed);
    if (buf_.size() + data.size() <= kBufferSize) {
      buf_.append(data.data(), data.size());
      return Status::OK();
    }
    Status s = FlushBuffered();
    if (!s.ok()) return s;
    if (data.size() <= kBufferSize) {
      buf_.append(data.data(), data.size());
      return Status::OK();
    }
    return WriteRaw(data.data(), data.size());
  }

  Status Flush() override { return FlushBuffered(); }

  Status Sync() override {
    Status s = FlushBuffered();
    if (!s.ok()) return s;
    counters_->syncs.fetch_add(1, std::memory_order_relaxed);
    if (fdatasync(fd_) != 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    Status s = FlushBuffered();
    if (close(fd_) != 0 && s.ok()) s = PosixError(fname_, errno);
    fd_ = -1;
    return s;
  }

 private:
  static constexpr size_t kBufferSize = 64 << 10;

  Status FlushBuffered() {
    Status s = Status::OK();
    if (!buf_.empty()) {
      s = WriteRaw(buf_.data(), buf_.size());
      buf_.clear();
    }
    return s;
  }

  Status WriteRaw(const char* p, size_t n) {
    while (n > 0) {
      ssize_t r = write(fd_, p, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += r;
      n -= static_cast<size_t>(r);
    }
    return Status::OK();
  }

  std::string fname_;
  int fd_;
  EnvIoCounters* counters_;
  std::string buf_;
};

class PosixRandomRWFile final : public RandomRWFile {
 public:
  PosixRandomRWFile(std::string fname, int fd, EnvIoCounters* counters)
      : fname_(std::move(fname)), fd_(fd), counters_(counters) {}
  ~PosixRandomRWFile() override {
    if (fd_ >= 0) close(fd_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ssize_t r = pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError(fname_, errno);
    counters_->read_bytes.fetch_add(static_cast<uint64_t>(r),
                                    std::memory_order_relaxed);
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override {
    counters_->write_bytes.fetch_add(data.size(), std::memory_order_relaxed);
    const char* p = data.data();
    size_t n = data.size();
    off_t off = static_cast<off_t>(offset);
    while (n > 0) {
      ssize_t r = pwrite(fd_, p, n, off);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += r;
      off += r;
      n -= static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status Sync() override {
    counters_->syncs.fetch_add(1, std::memory_order_relaxed);
    if (fdatasync(fd_) != 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (close(fd_) != 0) {
      fd_ = -1;
      return PosixError(fname_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
  EnvIoCounters* counters_;
};

class PosixEnv final : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixSequentialFile>(fname, fd, &counters_);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixRandomAccessFile>(fname, fd, &counters_);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd =
        open(fname.c_str(), O_TRUNC | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixWritableFile>(fname, fd, &counters_);
    return Status::OK();
  }

  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override {
    int fd = open(fname.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixRandomRWFile>(fname, fd, &counters_);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) return PosixError(dir, errno);
    struct dirent* entry;
    while ((entry = readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") result->push_back(name);
    }
    closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (unlink(fname.c_str()) != 0) return PosixError(fname, errno);
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    if (rmdir(dirname.c_str()) != 0) return PosixError(dirname, errno);
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct stat st;
    if (stat(fname.c_str(), &st) != 0) {
      *size = 0;
      return PosixError(fname, errno);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    if (rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }

  uint64_t NowMicros() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void SleepForMicroseconds(uint64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }

  const EnvIoCounters* io_counters() const override { return &counters_; }

 private:
  EnvIoCounters counters_;
};

}  // namespace

Env* Env::Default() {
  // Never destroyed: avoids shutdown-order problems (style-guide pattern).
  static Env* env = new PosixEnv();
  return env;
}

}  // namespace blsm
