#ifndef BLSM_IO_MEM_ENV_H_
#define BLSM_IO_MEM_ENV_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "io/env.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace blsm {

// In-memory filesystem for unit tests: fast, hermetic, and makes crash
// simulation trivial (DropUnsynced discards bytes appended after the last
// Sync, modelling a power failure).
class MemEnv final : public Env {
 public:
  MemEnv();
  ~MemEnv() override;

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override;

  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  // Overridden because GetChildren only lists direct files (dirs_ is a flat
  // set, nested files are invisible to the default walk): erase everything
  // under the path prefix instead.
  Status RemoveDirRecursive(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;

  uint64_t NowMicros() override;
  void SleepForMicroseconds(uint64_t micros) override;

  // Crash simulation: truncates every file back to its last-synced length.
  void DropUnsynced();

  const EnvIoCounters* io_counters() const override { return &counters_; }

  struct FileState;  // public so file implementations in the .cc can use it

 private:
  util::Mutex mu_{util::lock_rank::kMemEnvMu};
  std::map<std::string, std::shared_ptr<FileState>> files_ GUARDED_BY(mu_);
  std::set<std::string> dirs_ GUARDED_BY(mu_);
  EnvIoCounters counters_;
};

}  // namespace blsm

#endif  // BLSM_IO_MEM_ENV_H_
