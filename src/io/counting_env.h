#ifndef BLSM_IO_COUNTING_ENV_H_
#define BLSM_IO_COUNTING_ENV_H_

#include <atomic>
#include <memory>
#include <string>

#include "io/env.h"

namespace blsm {

// I/O statistics in the units the paper reasons in (§2.1): seeks for reads,
// bytes for sequential transfer. A read or write is a "seek" when its offset
// is not contiguous with the previous access to the same file handle.
struct IoStats {
  std::atomic<uint64_t> read_ops{0};
  std::atomic<uint64_t> read_seeks{0};
  std::atomic<uint64_t> read_bytes{0};
  std::atomic<uint64_t> write_ops{0};
  std::atomic<uint64_t> write_seeks{0};  // random (non-append) writes
  std::atomic<uint64_t> write_bytes{0};
  std::atomic<uint64_t> syncs{0};

  void Reset() {
    read_ops = 0;
    read_seeks = 0;
    read_bytes = 0;
    write_ops = 0;
    write_seeks = 0;
    write_bytes = 0;
    syncs = 0;
  }

  // Snapshot for arithmetic (atomics are not copyable).
  struct Snapshot {
    uint64_t read_ops, read_seeks, read_bytes;
    uint64_t write_ops, write_seeks, write_bytes;
    uint64_t syncs;

    Snapshot operator-(const Snapshot& b) const {
      return Snapshot{read_ops - b.read_ops,     read_seeks - b.read_seeks,
                      read_bytes - b.read_bytes, write_ops - b.write_ops,
                      write_seeks - b.write_seeks,
                      write_bytes - b.write_bytes, syncs - b.syncs};
    }
  };

  Snapshot snapshot() const {
    return Snapshot{read_ops.load(),   read_seeks.load(), read_bytes.load(),
                    write_ops.load(),  write_seeks.load(),
                    write_bytes.load(), syncs.load()};
  }
};

// Env decorator: forwards everything to a base Env while classifying and
// counting each file access into an IoStats owned by the caller.
class CountingEnv final : public Env {
 public:
  CountingEnv(Env* base, IoStats* stats) : base_(base), stats_(stats) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override;

  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status RemoveDirRecursive(const std::string& dirname) override {
    return base_->RemoveDirRecursive(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  uint64_t NowMicros() override { return base_->NowMicros(); }
  void SleepForMicroseconds(uint64_t micros) override {
    base_->SleepForMicroseconds(micros);
  }

  const EnvIoCounters* io_counters() const override {
    return base_->io_counters();
  }

  IoStats* stats() { return stats_; }

 private:
  Env* base_;
  IoStats* stats_;
};

}  // namespace blsm

#endif  // BLSM_IO_COUNTING_ENV_H_
