#include "io/counting_env.h"

namespace blsm {

namespace {

// A read is contiguous (no seek) if it starts within kNearWindow bytes after
// the previous read's end on the same handle; drives service such accesses
// from read-ahead without repositioning.
constexpr uint64_t kNearWindow = 128 << 10;

class CountingSequentialFile final : public SequentialFile {
 public:
  CountingSequentialFile(std::unique_ptr<SequentialFile> base, IoStats* stats)
      : base_(std::move(base)), stats_(stats) {
    // Opening a sequential file and starting to read is one repositioning.
    stats_->read_seeks.fetch_add(1, std::memory_order_relaxed);
  }

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = base_->Read(n, result, scratch);
    if (s.ok()) {
      stats_->read_ops.fetch_add(1, std::memory_order_relaxed);
      stats_->read_bytes.fetch_add(result->size(), std::memory_order_relaxed);
    }
    return s;
  }

  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  IoStats* stats_;
};

class CountingRandomAccessFile final : public RandomAccessFile {
 public:
  CountingRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                           IoStats* stats)
      : base_(std::move(base)), stats_(stats) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) {
      stats_->read_ops.fetch_add(1, std::memory_order_relaxed);
      stats_->read_bytes.fetch_add(result->size(), std::memory_order_relaxed);
      uint64_t prev = last_end_.exchange(offset + result->size(),
                                         std::memory_order_relaxed);
      if (offset < prev || offset > prev + kNearWindow) {
        stats_->read_seeks.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return s;
  }

  Status MultiRead(ReadRequest* reqs, size_t n) const override {
    // Forward the batch intact so the base env can coalesce/submit it as a
    // unit, then account each sub-read with the same seek classification a
    // serial Read sequence would have produced.
    Status s = base_->MultiRead(reqs, n);
    if (!s.ok()) return s;
    for (size_t i = 0; i < n; i++) {
      if (!reqs[i].status.ok()) continue;
      stats_->read_ops.fetch_add(1, std::memory_order_relaxed);
      stats_->read_bytes.fetch_add(reqs[i].result.size(),
                                   std::memory_order_relaxed);
      uint64_t prev = last_end_.exchange(reqs[i].offset + reqs[i].result.size(),
                                         std::memory_order_relaxed);
      if (reqs[i].offset < prev || reqs[i].offset > prev + kNearWindow) {
        stats_->read_seeks.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return Status::OK();
  }

  void ReadAheadHint(uint64_t offset, uint64_t len) const override {
    base_->ReadAheadHint(offset, len);
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  IoStats* stats_;
  mutable std::atomic<uint64_t> last_end_{~uint64_t{0} - kNearWindow};
};

class CountingWritableFile final : public WritableFile {
 public:
  CountingWritableFile(std::unique_ptr<WritableFile> base, IoStats* stats)
      : base_(std::move(base)), stats_(stats) {}

  Status Append(const Slice& data) override {
    Status s = base_->Append(data);
    if (s.ok()) {
      stats_->write_ops.fetch_add(1, std::memory_order_relaxed);
      stats_->write_bytes.fetch_add(data.size(), std::memory_order_relaxed);
    }
    return s;
  }

  Status AppendV(const Slice* parts, size_t n) override {
    Status s = base_->AppendV(parts, n);
    if (s.ok()) {
      size_t total = 0;
      for (size_t i = 0; i < n; i++) total += parts[i].size();
      stats_->write_ops.fetch_add(1, std::memory_order_relaxed);
      stats_->write_bytes.fetch_add(total, std::memory_order_relaxed);
    }
    return s;
  }

  size_t PreferredAppendAlignment() const override {
    return base_->PreferredAppendAlignment();
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    stats_->syncs.fetch_add(1, std::memory_order_relaxed);
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  IoStats* stats_;
};

class CountingRandomRWFile final : public RandomRWFile {
 public:
  CountingRandomRWFile(std::unique_ptr<RandomRWFile> base, IoStats* stats)
      : base_(std::move(base)), stats_(stats) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) {
      stats_->read_ops.fetch_add(1, std::memory_order_relaxed);
      stats_->read_bytes.fetch_add(result->size(), std::memory_order_relaxed);
      uint64_t prev = last_read_end_.exchange(offset + result->size(),
                                              std::memory_order_relaxed);
      if (offset < prev || offset > prev + kNearWindow) {
        stats_->read_seeks.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return s;
  }

  Status Write(uint64_t offset, const Slice& data) override {
    Status s = base_->Write(offset, data);
    if (s.ok()) {
      stats_->write_ops.fetch_add(1, std::memory_order_relaxed);
      stats_->write_bytes.fetch_add(data.size(), std::memory_order_relaxed);
      uint64_t prev = last_write_end_.exchange(offset + data.size(),
                                               std::memory_order_relaxed);
      if (offset < prev || offset > prev + kNearWindow) {
        stats_->write_seeks.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return s;
  }

  Status Sync() override {
    stats_->syncs.fetch_add(1, std::memory_order_relaxed);
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RandomRWFile> base_;
  IoStats* stats_;
  mutable std::atomic<uint64_t> last_read_end_{~uint64_t{0} - kNearWindow};
  std::atomic<uint64_t> last_write_end_{~uint64_t{0} - kNearWindow};
};

}  // namespace

Status CountingEnv::NewSequentialFile(const std::string& fname,
                                      std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> base;
  Status s = base_->NewSequentialFile(fname, &base);
  if (!s.ok()) return s;
  *result = std::make_unique<CountingSequentialFile>(std::move(base), stats_);
  return Status::OK();
}

Status CountingEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base;
  Status s = base_->NewRandomAccessFile(fname, &base);
  if (!s.ok()) return s;
  *result =
      std::make_unique<CountingRandomAccessFile>(std::move(base), stats_);
  return Status::OK();
}

Status CountingEnv::NewWritableFile(const std::string& fname,
                                    std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> base;
  Status s = base_->NewWritableFile(fname, &base);
  if (!s.ok()) return s;
  *result = std::make_unique<CountingWritableFile>(std::move(base), stats_);
  return Status::OK();
}

Status CountingEnv::NewRandomRWFile(const std::string& fname,
                                    std::unique_ptr<RandomRWFile>* result) {
  std::unique_ptr<RandomRWFile> base;
  Status s = base_->NewRandomRWFile(fname, &base);
  if (!s.ok()) return s;
  *result = std::make_unique<CountingRandomRWFile>(std::move(base), stats_);
  return Status::OK();
}

}  // namespace blsm
