#ifndef BLSM_IO_SOCKET_H_
#define BLSM_IO_SOCKET_H_

// TCP socket and epoll event-loop plumbing for the network server front-end
// (src/server/). Lives in src/io/ alongside the Env backends because this is
// the one other place in the tree that talks to the kernel directly: every
// byte that crosses a socket goes through these wrappers so the server can
// count them, and the raw-io lint rule keeps syscalls out of src/server/.
//
// All wrappers are Status-returning and EINTR-safe. Sockets are plain file
// descriptors owned by the caller; the helpers never close an fd they did
// not open.

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace blsm::net {

// Result of one non-blocking transfer attempt.
enum class IoResult {
  kOk,        // made progress (n > 0 bytes moved)
  kWouldBlock,  // EAGAIN/EWOULDBLOCK: no progress possible right now
  kEof,       // orderly peer shutdown (recv only)
  kError,     // connection-level failure; close the socket
};

// Opens a listening TCP socket on 127.0.0.1 (host == "") or the given
// address. `port` 0 asks the kernel for an ephemeral port; *bound_port
// reports the actual one. SO_REUSEADDR is set so tests can rebind.
Status Listen(const std::string& host, uint16_t port, int backlog,
              int* listen_fd, uint16_t* bound_port);

// Blocking connect to host:port with TCP_NODELAY set (the server's replies
// are latency-sensitive small frames).
Status Connect(const std::string& host, uint16_t port, int* fd);

// Accepts one pending connection; sets TCP_NODELAY on it. kWouldBlock when
// the listen queue is empty (non-blocking listener).
IoResult Accept(int listen_fd, int* conn_fd);

Status SetNonBlocking(int fd);

// Non-blocking send/recv, EINTR-retried. *n reports bytes moved on kOk.
IoResult SendSome(int fd, const char* data, size_t len, size_t* n);
IoResult RecvSome(int fd, char* buf, size_t len, size_t* n);

// Blocking full-buffer send/recv for the client side (Status::IOError on a
// short transfer; RecvAll reports NotFound("eof") on a clean close at a
// frame boundary, IOError mid-buffer).
Status SendAll(int fd, const char* data, size_t len);
Status RecvAll(int fd, char* buf, size_t len);

void CloseFd(int fd);

// Thin epoll wrapper with an eventfd wakeup channel so worker threads can
// interrupt a blocked Poll(). Level-triggered: the loop re-polls until a
// conn's buffers drain, which keeps the read/write state machines simple.
class EventLoop {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;   // EPOLLERR/EPOLLHUP
    bool wakeup = false;  // the eventfd fired (Wake() was called)
  };

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // False when epoll/eventfd creation failed (error() has the cause);
  // Poll()/Add() fail fast in that state.
  bool ok() const { return epoll_fd_ >= 0; }
  const Status& error() const { return init_error_; }

  Status Add(int fd, bool want_read, bool want_write);
  Status Modify(int fd, bool want_read, bool want_write);
  void Remove(int fd);

  // Blocks up to timeout_ms (-1 = forever) and appends ready events to
  // *out. A Wake() from any thread surfaces as one event with wakeup=true.
  Status Poll(int timeout_ms, std::vector<Event>* out);

  // Thread-safe; coalesces (N wakes before the next Poll surface as one).
  void Wake();

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  Status init_error_;
};

}  // namespace blsm::net

#endif  // BLSM_IO_SOCKET_H_
