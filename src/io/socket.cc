#include "io/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace blsm::net {

namespace {

Status Errno(const std::string& context, int err) {
  return Status::IOError(context + ": " + strerror(err));
}

Status ParseAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const std::string h = host.empty() ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, h.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + h);
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best-effort: a socket that cannot set NODELAY still works, just with
  // Nagle batching the small reply frames.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Status Listen(const std::string& host, uint16_t port, int backlog,
              int* listen_fd, uint16_t* bound_port) {
  sockaddr_in addr;
  Status s = ParseAddr(host, port, &addr);
  if (!s.ok()) return s;
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket", errno);
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    CloseFd(fd);
    return Errno("bind", err);
  }
  if (listen(fd, backlog) != 0) {
    int err = errno;
    CloseFd(fd);
    return Errno("listen", err);
  }
  if (bound_port != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      int err = errno;
      CloseFd(fd);
      return Errno("getsockname", err);
    }
    *bound_port = ntohs(actual.sin_port);
  }
  *listen_fd = fd;
  return Status::OK();
}

Status Connect(const std::string& host, uint16_t port, int* fd) {
  sockaddr_in addr;
  Status s = ParseAddr(host, port, &addr);
  if (!s.ok()) return s;
  int sock = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (sock < 0) return Errno("socket", errno);
  int rc;
  do {
    rc = connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    int err = errno;
    CloseFd(sock);
    return Errno("connect " + host + ":" + std::to_string(port), err);
  }
  SetNoDelay(sock);
  *fd = sock;
  return Status::OK();
}

IoResult Accept(int listen_fd, int* conn_fd) {
  for (;;) {
    int fd = accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      SetNoDelay(fd);
      *conn_fd = fd;
      return IoResult::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
    // ECONNABORTED and friends: the pending connection died before we got
    // to it. Not a listener-level failure.
    if (errno == ECONNABORTED) continue;
    return IoResult::kError;
  }
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)", errno);
  }
  return Status::OK();
}

IoResult SendSome(int fd, const char* data, size_t len, size_t* n) {
  *n = 0;
  for (;;) {
    ssize_t r = send(fd, data, len, MSG_NOSIGNAL);
    if (r >= 0) {
      *n = static_cast<size_t>(r);
      return IoResult::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
    return IoResult::kError;
  }
}

IoResult RecvSome(int fd, char* buf, size_t len, size_t* n) {
  *n = 0;
  for (;;) {
    ssize_t r = recv(fd, buf, len, 0);
    if (r > 0) {
      *n = static_cast<size_t>(r);
      return IoResult::kOk;
    }
    if (r == 0) return IoResult::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
    return IoResult::kError;
  }
}

Status SendAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t r = send(fd, data, len, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("send", errno);
    }
    data += r;
    len -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status RecvAll(int fd, char* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    ssize_t r = recv(fd, buf + got, len - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("recv", errno);
    }
    if (r == 0) {
      if (got == 0) return Status::NotFound("eof");
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd >= 0) close(fd);
}

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    init_error_ = Errno("epoll_create1", errno);
    return;
  }
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    init_error_ = Errno("eventfd", errno);
    close(epoll_fd_);
    epoll_fd_ = -1;
    return;
  }
  epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    init_error_ = Errno("epoll_ctl(wake)", errno);
    close(wake_fd_);
    close(epoll_fd_);
    epoll_fd_ = wake_fd_ = -1;
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::Add(int fd, bool want_read, bool want_write) {
  if (!ok()) return init_error_;
  epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Errno("epoll_ctl(add)", errno);
  }
  return Status::OK();
}

Status EventLoop::Modify(int fd, bool want_read, bool want_write) {
  if (!ok()) return init_error_;
  epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Errno("epoll_ctl(mod)", errno);
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  if (!ok()) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

Status EventLoop::Poll(int timeout_ms, std::vector<Event>* out) {
  if (!ok()) return init_error_;
  epoll_event evs[64];
  int n;
  do {
    n = epoll_wait(epoll_fd_, evs, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Errno("epoll_wait", errno);
  for (int i = 0; i < n; i++) {
    Event e;
    e.fd = evs[i].data.fd;
    if (e.fd == wake_fd_) {
      uint64_t drain;
      // Drain the counter so the next Wake() re-arms the edge.
      ssize_t ignored = read(wake_fd_, &drain, sizeof(drain));
      (void)ignored;
      e.wakeup = true;
    } else {
      e.readable = (evs[i].events & EPOLLIN) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.error = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    }
    out->push_back(e);
  }
  return Status::OK();
}

void EventLoop::Wake() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  ssize_t ignored = write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

}  // namespace blsm::net
