// io_uring Env implemented on the raw syscalls (io_uring_setup /
// io_uring_enter / io_uring_register) against <linux/io_uring.h>, so the
// backend needs no liburing at build time and degrades to the posix Env at
// runtime when the kernel (or a seccomp policy) refuses the syscalls.

#include "io/uring_env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>) && \
    !defined(BLSM_DISABLE_IO_URING)
#define BLSM_HAVE_IO_URING 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#endif

namespace blsm {

namespace {

Status UringError(const std::string& context, int err) {
  if (err == ENOENT) {
    return Status::NotFound(context + ": " + strerror(err));
  }
  return Status::IOError(context + ": " + strerror(err));
}

#if defined(BLSM_HAVE_IO_URING) && defined(__NR_io_uring_setup)
#define BLSM_URING_RUNTIME 1

// --- ring --------------------------------------------------------------------

// One submission/completion ring. Not thread-safe; the owning file serializes
// access. All kernel communication is through the three mmap'd regions; the
// only syscall per batch is io_uring_enter.
class UringQueue {
 public:
  struct Op {
    uint64_t off = 0;
    void* buf = nullptr;
    unsigned len = 0;
    bool write = false;  // WRITE instead of READ
    int buf_index = -1;  // >= 0 -> READ_FIXED against a registered buffer
    ssize_t res = 0;     // completion: bytes transferred, or -errno
  };

  static std::unique_ptr<UringQueue> Create(unsigned entries) {
    io_uring_params params;
    memset(&params, 0, sizeof(params));
    int fd = static_cast<int>(
        syscall(__NR_io_uring_setup, entries, &params));
    if (fd < 0) return nullptr;
    auto q = std::unique_ptr<UringQueue>(new UringQueue());
    q->ring_fd_ = fd;
    q->sq_entries_ = params.sq_entries;

    q->sq_ring_sz_ =
        params.sq_off.array + params.sq_entries * sizeof(unsigned);
    q->cq_ring_sz_ =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    q->sqes_sz_ = params.sq_entries * sizeof(io_uring_sqe);

    q->sq_ring_ = mmap(nullptr, q->sq_ring_sz_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
    q->cq_ring_ = mmap(nullptr, q->cq_ring_sz_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    q->sqes_raw_ = mmap(nullptr, q->sqes_sz_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
    if (q->sq_ring_ == MAP_FAILED || q->cq_ring_ == MAP_FAILED ||
        q->sqes_raw_ == MAP_FAILED) {
      return nullptr;  // destructor unmaps whatever succeeded
    }

    auto* sq = static_cast<char*>(q->sq_ring_);
    q->sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    q->sq_mask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    q->sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    auto* cq = static_cast<char*>(q->cq_ring_);
    q->cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    q->cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    q->cq_mask_ = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    q->cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    q->sqes_ = static_cast<io_uring_sqe*>(q->sqes_raw_);
    return q;
  }

  ~UringQueue() {
    if (sq_ring_ != MAP_FAILED && sq_ring_ != nullptr) {
      munmap(sq_ring_, sq_ring_sz_);
    }
    if (cq_ring_ != MAP_FAILED && cq_ring_ != nullptr) {
      munmap(cq_ring_, cq_ring_sz_);
    }
    if (sqes_raw_ != MAP_FAILED && sqes_raw_ != nullptr) {
      munmap(sqes_raw_, sqes_sz_);
    }
    if (ring_fd_ >= 0) close(ring_fd_);
  }

  bool RegisterBuffers(const std::vector<struct iovec>& iov) {
    return syscall(__NR_io_uring_register, ring_fd_, IORING_REGISTER_BUFFERS,
                   iov.data(), iov.size()) == 0;
  }

  // Executes all of ops[0..n) against fd, batching up to sq_entries SQEs per
  // io_uring_enter. Returns false on a ring-level failure (the caller falls
  // back to synchronous reads); per-op results (bytes or -errno) in op.res.
  bool Run(int fd, Op* ops, size_t n) {
    size_t done = 0;
    while (done < n) {
      size_t chunk = n - done;
      if (chunk > sq_entries_) chunk = sq_entries_;
      if (!RunChunk(fd, ops + done, chunk, done)) return false;
      done += chunk;
    }
    return true;
  }

 private:
  UringQueue() = default;

  bool RunChunk(int fd, Op* ops, size_t chunk, size_t base_index) {
    unsigned tail = *sq_tail_;  // single producer: plain load is enough
    unsigned mask = *sq_mask_;
    for (size_t i = 0; i < chunk; i++) {
      unsigned idx = tail & mask;
      io_uring_sqe* sqe = &sqes_[idx];
      memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = ops[i].write
                        ? static_cast<uint8_t>(IORING_OP_WRITE)
                        : ops[i].buf_index >= 0
                              ? static_cast<uint8_t>(IORING_OP_READ_FIXED)
                              : static_cast<uint8_t>(IORING_OP_READ);
      sqe->fd = fd;
      sqe->off = ops[i].off;
      sqe->addr = reinterpret_cast<uint64_t>(ops[i].buf);
      sqe->len = ops[i].len;
      if (ops[i].buf_index >= 0) {
        sqe->buf_index = static_cast<uint16_t>(ops[i].buf_index);
      }
      sqe->user_data = base_index + i;
      sq_array_[idx] = idx;
      tail++;
    }
    __atomic_store_n(sq_tail_, tail, __ATOMIC_RELEASE);

    size_t submitted = 0;
    size_t reaped = 0;
    while (submitted < chunk || reaped < chunk) {
      unsigned to_submit = static_cast<unsigned>(chunk - submitted);
      unsigned want = static_cast<unsigned>(chunk - reaped);
      long ret = syscall(__NR_io_uring_enter, ring_fd_, to_submit, want,
                         IORING_ENTER_GETEVENTS, nullptr, 0);
      if (ret < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      submitted += static_cast<size_t>(ret);
      // Drain whatever completions are visible.
      unsigned head = *cq_head_;
      unsigned cq_tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      unsigned cmask = *cq_mask_;
      while (head != cq_tail) {
        const io_uring_cqe* cqe = &cqes_[head & cmask];
        size_t op_index = static_cast<size_t>(cqe->user_data) - base_index;
        if (op_index < chunk) ops[op_index].res = cqe->res;
        head++;
        reaped++;
      }
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    }
    return true;
  }

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  void* sqes_raw_ = nullptr;
  size_t sq_ring_sz_ = 0, cq_ring_sz_ = 0, sqes_sz_ = 0;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
};

// --- aligned buffer pool -----------------------------------------------------

// Fixed set of alignment-sized slabs for the O_DIRECT read path, allocated
// up front so they can be registered with the ring (READ_FIXED skips the
// kernel's per-IO pin/unpin of user pages). Acquire returns -1 when the pool
// is exhausted or the request outgrows a slab; the caller then uses a
// one-shot aligned allocation with plain READ.
class AlignedBufferPool {
 public:
  static constexpr size_t kSlabBytes = 64 << 10;

  AlignedBufferPool(size_t alignment, size_t slabs) {
    for (size_t i = 0; i < slabs; i++) {
      void* p = nullptr;
      if (posix_memalign(&p, alignment, kSlabBytes) != 0) break;
      slabs_.push_back(static_cast<char*>(p));
      free_.push_back(static_cast<int>(i));
    }
  }
  ~AlignedBufferPool() {
    for (char* p : slabs_) free(p);
  }

  std::vector<struct iovec> Iovecs() const {
    std::vector<struct iovec> iov;
    iov.reserve(slabs_.size());
    for (char* p : slabs_) iov.push_back({p, kSlabBytes});
    return iov;
  }

  int Acquire(size_t len, char** buf) {
    if (len > kSlabBytes) return -1;
    util::MutexLock l(&mu_);
    if (free_.empty()) return -1;
    int idx = free_.back();
    free_.pop_back();
    *buf = slabs_[static_cast<size_t>(idx)];
    return idx;
  }

  void Release(int idx) {
    util::MutexLock l(&mu_);
    free_.push_back(idx);
  }

  size_t size() const { return slabs_.size(); }

 private:
  std::vector<char*> slabs_;
  util::Mutex mu_{util::lock_rank::kAlignedBufferPoolMu};
  std::vector<int> free_ GUARDED_BY(mu_);
};

// --- random-access file ------------------------------------------------------

class UringRandomAccessFile final : public RandomAccessFile {
 public:
  UringRandomAccessFile(std::string fname, int fd,
                        std::unique_ptr<UringQueue> queue, bool direct,
                        size_t alignment, EnvIoCounters* counters)
      : fname_(std::move(fname)),
        fd_(fd),
        queue_(std::move(queue)),
        direct_(direct),
        alignment_(alignment),
        counters_(counters) {
    if (direct_) {
      pool_ = std::make_unique<AlignedBufferPool>(alignment_, /*slabs=*/32);
      if (pool_->size() > 0) {
        buffers_registered_ = queue_->RegisterBuffers(pool_->Iovecs());
      }
    }
  }
  ~UringRandomAccessFile() override { close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    if (!direct_) {
      // A lone buffered read skips the ring: one pread beats an SQE
      // submit/reap round-trip, and it keeps concurrent readers off the
      // ring mutex. The ring earns its keep on MultiRead batches and on
      // O_DIRECT windows, both of which still go through DoReads.
      ssize_t r = pread(fd_, scratch, n, static_cast<off_t>(offset));
      if (r < 0) return UringError(fname_, errno);
      *result = Slice(scratch, static_cast<size_t>(r));
      tracker_.OnRead(offset, counters_);
      counters_->read_bytes.fetch_add(result->size(),
                                      std::memory_order_relaxed);
      return Status::OK();
    }
    ReadRequest req;
    req.offset = offset;
    req.len = n;
    req.scratch = scratch;
    DoReads(&req, 1);
    *result = req.result;
    return req.status;
  }

  Status MultiRead(ReadRequest* reqs, size_t n) const override {
    counters_->multiread_batches.fetch_add(1, std::memory_order_relaxed);
    counters_->multiread_requests.fetch_add(n, std::memory_order_relaxed);
    DoReads(reqs, n);
    return Status::OK();
  }

  void ReadAheadHint(uint64_t offset, uint64_t len) const override {
#if defined(POSIX_FADV_WILLNEED)
    // Under O_DIRECT the page cache is bypassed, so a WILLNEED hint cannot
    // front anything; the tracker still records the range so readahead_hits
    // reflects access-pattern locality either way.
    if (!direct_) {
      posix_fadvise(fd_, static_cast<off_t>(offset), static_cast<off_t>(len),
                    POSIX_FADV_WILLNEED);
    }
#endif
    tracker_.Hint(offset, len, counters_);
  }

 private:
  struct DirectWindow {
    char* buf = nullptr;   // aligned buffer the kernel reads into
    int pool_index = -1;   // registered slab, or -1 for a one-shot alloc
    uint64_t aligned_off = 0;
    size_t lead = 0;       // bytes of rounding before the caller's offset
  };

  void DoReads(ReadRequest* reqs, size_t n) const {
    std::vector<UringQueue::Op> ops(n);
    std::vector<DirectWindow> windows(direct_ ? n : 0);
    for (size_t i = 0; i < n; i++) {
      if (direct_) {
        PrepareDirect(&reqs[i], &ops[i], &windows[i]);
      } else {
        ops[i].off = reqs[i].offset;
        ops[i].buf = reqs[i].scratch;
        ops[i].len = static_cast<unsigned>(reqs[i].len);
      }
    }
    // Only the ring submission itself needs the mutex (it serializes SQE/CQE
    // access); window prep hits the internally-locked buffer pool, and the
    // fallback preads plus result copies must not block other readers of
    // this file.
    bool ring_ok;
    {
      util::MutexLock l(&mu_);
      ring_ok = queue_->Run(fd_, ops.data(), n);
    }
    for (size_t i = 0; i < n; i++) {
      if (!ring_ok) {
        // Ring died mid-flight: synchronous fallback keeps the request
        // contract intact (the extra pread re-reads are the cost of a
        // once-per-file failure path).
        ops[i].res = FallbackRead(&ops[i]);
      }
      Finish(&reqs[i], &ops[i], direct_ ? &windows[i] : nullptr);
    }
  }

  void PrepareDirect(const ReadRequest* req, UringQueue::Op* op,
                     DirectWindow* win) const {
    win->aligned_off = req->offset & ~(alignment_ - 1);
    win->lead = static_cast<size_t>(req->offset - win->aligned_off);
    size_t want = win->lead + req->len;
    size_t aligned_len = (want + alignment_ - 1) & ~(alignment_ - 1);
    if (buffers_registered_) {
      win->pool_index = pool_->Acquire(aligned_len, &win->buf);
    }
    if (win->pool_index < 0) {
      void* p = nullptr;
      if (posix_memalign(&p, alignment_, aligned_len) != 0) p = nullptr;
      win->buf = static_cast<char*>(p);
    }
    op->off = win->aligned_off;
    op->buf = win->buf;
    op->len = static_cast<unsigned>(aligned_len);
    op->buf_index = win->pool_index;
  }

  ssize_t FallbackRead(const UringQueue::Op* op) const {
    ssize_t r = pread(fd_, op->buf, op->len, static_cast<off_t>(op->off));
    return r < 0 ? -errno : r;
  }

  void Finish(ReadRequest* req, const UringQueue::Op* op,
              DirectWindow* win) const {
    if (win != nullptr && win->buf == nullptr) {
      req->status = Status::IOError(fname_ + ": aligned allocation failed");
      return;
    }
    if (op->res < 0) {
      req->status = UringError(fname_, static_cast<int>(-op->res));
    } else {
      size_t got = static_cast<size_t>(op->res);
      if (win != nullptr) {
        size_t usable = got > win->lead ? got - win->lead : 0;
        size_t len = usable < req->len ? usable : req->len;
        memcpy(req->scratch, win->buf + win->lead, len);
        req->result = Slice(req->scratch, len);
      } else {
        req->result = Slice(req->scratch, got);
      }
      req->status = Status::OK();
      tracker_.OnRead(req->offset, counters_);
      counters_->read_bytes.fetch_add(req->result.size(),
                                      std::memory_order_relaxed);
    }
    if (win != nullptr && win->buf != nullptr) {
      if (win->pool_index >= 0) {
        pool_->Release(win->pool_index);
      } else {
        free(win->buf);
      }
    }
  }

  std::string fname_;
  int fd_;
  // analyze:allow(blocking-under-lock) mu_ serializes SQE/CQE access on the
  // per-file ring; the submit-and-wait is the operation it protects. The
  // fallback preads and result copies run outside it (see DoReads).
  mutable util::Mutex mu_{util::lock_rank::kUringRandomAccessFileMu};  // ring
  std::unique_ptr<UringQueue> queue_;
  bool direct_;
  size_t alignment_;
  EnvIoCounters* counters_;
  std::unique_ptr<AlignedBufferPool> pool_;
  bool buffers_registered_ = false;
  mutable ReadAheadTracker tracker_;
};

// --- writable file -----------------------------------------------------------

// Append-only writer owned by the uring env so write/sync totals land in the
// same counters as the ring reads. Buffered mode mirrors the posix writer;
// direct mode accumulates into one alignment-sized staging buffer and only
// ever issues sector-aligned writes — submitted as IORING_OP_WRITE SQEs when
// the file has a ring — with the padded tail rewritten in place on the next
// flush and the file truncated to its logical size at Close. A direct write
// the filesystem rejects mid-stream (EINVAL: the open succeeded but this
// extent or mount refuses O_DIRECT) re-opens the file buffered and
// re-windows the padded range back to its exact logical bytes, so the
// caller never sees the downgrade.
class UringWritableFile final : public WritableFile {
 public:
  UringWritableFile(std::string fname, int fd,
                    std::unique_ptr<UringQueue> queue, bool direct,
                    size_t alignment, int einval_after,
                    EnvIoCounters* counters)
      : fname_(std::move(fname)),
        fd_(fd),
        queue_(std::move(queue)),
        direct_(direct),
        alignment_(alignment),
        inject_einval_countdown_(einval_after),
        counters_(counters) {
    if (direct_) {
      void* p = nullptr;
      if (posix_memalign(&p, alignment_, kBufferSize) != 0) p = nullptr;
      aligned_buf_ = static_cast<char*>(p);
    }
    buf_used_ = 0;
  }

  ~UringWritableFile() override {
    if (fd_ >= 0) {
      Close().IgnoreError("destructor has no caller to report to");
    }
    free(aligned_buf_);
  }

  Status Append(const Slice& data) override { return AppendV(&data, 1); }

  Status AppendV(const Slice* parts, size_t n) override {
    for (size_t i = 0; i < n; i++) {
      counters_->write_bytes.fetch_add(parts[i].size(),
                                       std::memory_order_relaxed);
      const char* p = parts[i].data();
      size_t left = parts[i].size();
      while (left > 0) {
        if (direct_ && aligned_buf_ == nullptr) {
          return Status::IOError(fname_ + ": aligned allocation failed");
        }
        char* buf = direct_ ? aligned_buf_ : plain_buf_;
        size_t room = kBufferSize - buf_used_;
        size_t take = left < room ? left : room;
        memcpy(buf + buf_used_, p, take);
        buf_used_ += take;
        p += take;
        left -= take;
        if (buf_used_ == kBufferSize) {
          Status s = FlushFullBuffer();
          if (!s.ok()) return s;
        }
      }
    }
    return Status::OK();
  }

  size_t PreferredAppendAlignment() const override {
    return direct_ ? alignment_ : 1;
  }

  Status Flush() override {
    // Direct mode cannot push a partial sector without also padding it;
    // Sync() and Close() handle that. Buffered mode drains eagerly.
    if (direct_) return Status::OK();
    return DrainPlain();
  }

  Status Sync() override {
    Status s = direct_ ? FlushTailPadded() : DrainPlain();
    if (!s.ok()) return s;
    counters_->syncs.fetch_add(1, std::memory_order_relaxed);
    if (fdatasync(fd_) != 0) return UringError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    Status s = direct_ ? FlushTailPadded() : DrainPlain();
    if (s.ok() && direct_) {
      if (ftruncate(fd_, static_cast<off_t>(logical_size_)) != 0) {
        s = UringError(fname_, errno);
      }
    }
    if (close(fd_) != 0 && s.ok()) s = UringError(fname_, errno);
    fd_ = -1;
    return s;
  }

 private:
  static constexpr size_t kBufferSize = 256 << 10;

  Status WriteRange(const char* p, size_t len, uint64_t off) {
    while (len > 0) {
      ssize_t r = pwrite(fd_, p, len, static_cast<off_t>(off));
      if (r < 0) {
        if (errno == EINTR) continue;
        return UringError(fname_, errno);
      }
      p += r;
      off += static_cast<uint64_t>(r);
      len -= static_cast<size_t>(r);
    }
    return Status::OK();
  }

  // One write, preferring a ring SQE; bytes transferred or -errno. A ring
  // that dies degrades this file to pwrite permanently.
  ssize_t SubmitWrite(const char* p, size_t len, uint64_t off) {
    if (queue_ != nullptr) {
      UringQueue::Op op;
      op.off = off;
      op.buf = const_cast<char*>(p);
      op.len = static_cast<unsigned>(len);
      op.write = true;
      if (queue_->Run(fd_, &op, 1)) {
        counters_->ring_writes.fetch_add(1, std::memory_order_relaxed);
        return op.res;
      }
      queue_.reset();
    }
    ssize_t r = pwrite(fd_, p, len, static_cast<off_t>(off));
    return r < 0 ? -errno : r;
  }

  // Direct-mode range write of aligned_buf_[0, padded_len) at `off`, where
  // only the first `logical_len` bytes are real data. On a mid-stream
  // EINVAL the writer re-opens buffered and re-windows: the bytes still
  // owed are rewritten without sector padding and any padding already on
  // disk past the logical end is truncated away.
  Status WriteDirect(size_t logical_len, size_t padded_len, uint64_t off) {
    const char* p = aligned_buf_;
    const uint64_t logical_end = off + logical_len;
    size_t left = padded_len;
    while (left > 0) {
      ssize_t r;
      if (inject_einval_countdown_ >= 0 && inject_einval_countdown_-- == 0) {
        r = -EINVAL;  // test hook: the Nth direct write is rejected
      } else {
        r = SubmitWrite(p, left, off);
      }
      if (r < 0) {
        if (r == -EINTR) continue;
        if (r == -EINVAL) return ReopenBuffered(p, off, logical_end);
        return UringError(fname_, static_cast<int>(-r));
      }
      p += r;
      off += static_cast<uint64_t>(r);
      left -= static_cast<size_t>(r);
    }
    return Status::OK();
  }

  // The mid-stream fallback: swap the O_DIRECT fd for a buffered one on the
  // same path, finish the interrupted range byte-exact, and drop any padded
  // sectors past the logical end. direct_ flips off, so every later append
  // runs the plain buffered path.
  Status ReopenBuffered(const char* p, uint64_t off, uint64_t logical_end) {
    counters_->direct_write_fallbacks.fetch_add(1, std::memory_order_relaxed);
    int fd = open(fname_.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0) return UringError(fname_, errno);
    close(fd_);
    fd_ = fd;
    direct_ = false;
    queue_.reset();  // the ring was bound to the old fd's direct windows
    if (off < logical_end) {
      Status s = WriteRange(p, static_cast<size_t>(logical_end - off), off);
      if (!s.ok()) return s;
    }
    if (ftruncate(fd_, static_cast<off_t>(logical_end)) != 0) {
      return UringError(fname_, errno);
    }
    return Status::OK();
  }

  Status FlushFullBuffer() {
    if (direct_) {
      // If this downgrades mid-flush the whole buffer still lands byte-exact
      // and future appends stage into plain_buf_.
      Status s = WriteDirect(kBufferSize, kBufferSize, flushed_offset_);
      if (!s.ok()) return s;
    } else {
      Status s = WriteRange(plain_buf_, kBufferSize, flushed_offset_);
      if (!s.ok()) return s;
    }
    flushed_offset_ += kBufferSize;
    logical_size_ = flushed_offset_;
    buf_used_ = 0;
    return Status::OK();
  }

  Status DrainPlain() {
    if (buf_used_ == 0) return Status::OK();
    Status s = WriteRange(plain_buf_, buf_used_, flushed_offset_);
    if (!s.ok()) return s;
    flushed_offset_ += buf_used_;
    logical_size_ = flushed_offset_;
    buf_used_ = 0;
    return Status::OK();
  }

  // Writes the buffered tail padded with zeros to a sector boundary. The
  // buffer keeps its contents and flushed_offset_ stays put, so subsequent
  // appends extend the same staging buffer and the next aligned write
  // replaces the padded sector with real bytes.
  Status FlushTailPadded() {
    logical_size_ = flushed_offset_ + buf_used_;
    if (buf_used_ == 0) return Status::OK();
    size_t padded = (buf_used_ + alignment_ - 1) & ~(alignment_ - 1);
    memset(aligned_buf_ + buf_used_, 0, padded - buf_used_);
    Status s = WriteDirect(buf_used_, padded, flushed_offset_);
    if (!s.ok()) return s;
    if (!direct_) {
      // The tail went out through the buffered fallback, byte-exact: adopt
      // drained-buffer bookkeeping so later appends start a fresh window.
      flushed_offset_ += buf_used_;
      buf_used_ = 0;
    }
    return Status::OK();
  }

  std::string fname_;
  int fd_;
  std::unique_ptr<UringQueue> queue_;  // null -> synchronous pwrite
  bool direct_;
  size_t alignment_;
  // Test hook (UringEnvOptions::direct_write_einval_after): counts down per
  // direct write attempt; hitting zero forges one EINVAL. -1 = inactive.
  int inject_einval_countdown_;
  EnvIoCounters* counters_;
  char* aligned_buf_ = nullptr;
  char plain_buf_[kBufferSize];
  size_t buf_used_ = 0;
  uint64_t flushed_offset_ = 0;
  uint64_t logical_size_ = 0;
};

#endif  // BLSM_URING_RUNTIME

}  // namespace

// --- env ---------------------------------------------------------------------

#if defined(BLSM_URING_RUNTIME)

bool UringEnv::Supported() {
  static const bool supported = [] {
    auto q = UringQueue::Create(4);
    if (q == nullptr) return false;
    int fd = open("/dev/zero", O_RDONLY | O_CLOEXEC);
    if (fd < 0) return false;
    char buf[16];
    UringQueue::Op op;
    op.off = 0;
    op.buf = buf;
    op.len = sizeof(buf);
    bool ok = q->Run(fd, &op, 1) && op.res == sizeof(buf);
    close(fd);
    return ok;
  }();
  return supported;
}

UringEnv::UringEnv(Env* base, UringEnvOptions options)
    : base_(base != nullptr ? base : Env::Default()),
      options_(options),
      uring_ok_(Supported()) {}

UringEnv::~UringEnv() = default;

Status UringEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  if (!uring_ok_) return base_->NewRandomAccessFile(fname, result);
  bool direct = options_.direct_io;
  int flags = O_RDONLY | O_CLOEXEC;
#if defined(O_DIRECT)
  if (direct) flags |= O_DIRECT;
#endif
  int fd = open(fname.c_str(), flags);
#if defined(O_DIRECT)
  if (fd < 0 && direct && errno == EINVAL) {
    // Filesystem without O_DIRECT (tmpfs): buffered ring reads instead.
    direct = false;
    fd = open(fname.c_str(), O_RDONLY | O_CLOEXEC);
  }
#endif
  if (fd < 0) return UringError(fname, errno);
  auto queue = UringQueue::Create(options_.queue_depth);
  if (queue == nullptr) {
    // Per-file ring exhaustion (fd or memlock limits): this file falls back
    // to the base env's synchronous reads.
    close(fd);
    return base_->NewRandomAccessFile(fname, result);
  }
  *result = std::make_unique<UringRandomAccessFile>(
      fname, fd, std::move(queue), direct, options_.direct_io_alignment,
      &counters_);
  return Status::OK();
}

Status UringEnv::NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) {
  if (!uring_ok_) return base_->NewWritableFile(fname, result);
  bool direct = options_.direct_io;
  int flags = O_TRUNC | O_WRONLY | O_CREAT | O_CLOEXEC;
#if defined(O_DIRECT)
  if (direct) flags |= O_DIRECT;
#endif
  int fd = open(fname.c_str(), flags, 0644);
#if defined(O_DIRECT)
  if (fd < 0 && direct && errno == EINVAL) {
    direct = false;
    fd = open(fname.c_str(), O_TRUNC | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  }
#endif
  if (fd < 0) return UringError(fname, errno);
  // Direct-mode writers get their own small ring so flushes are SQE
  // submissions; nullptr (limits exhausted) quietly degrades to pwrite.
  std::unique_ptr<UringQueue> queue;
  if (direct) queue = UringQueue::Create(/*entries=*/4);
  *result = std::make_unique<UringWritableFile>(
      fname, fd, std::move(queue), direct, options_.direct_io_alignment,
      direct ? options_.direct_write_einval_after : -1, &counters_);
  return Status::OK();
}

const EnvIoCounters* UringEnv::io_counters() const {
  return uring_ok_ ? &counters_ : base_->io_counters();
}

#else  // !BLSM_URING_RUNTIME

bool UringEnv::Supported() { return false; }

UringEnv::UringEnv(Env* base, UringEnvOptions options)
    : base_(base != nullptr ? base : Env::Default()),
      options_(options),
      uring_ok_(false) {}

UringEnv::~UringEnv() = default;

Status UringEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  return base_->NewRandomAccessFile(fname, result);
}

Status UringEnv::NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) {
  return base_->NewWritableFile(fname, result);
}

const EnvIoCounters* UringEnv::io_counters() const {
  return base_->io_counters();
}

#endif  // BLSM_URING_RUNTIME

// Sequential reads (log recovery) and RW files (B-tree pages) gain little
// from ring batching; they delegate, as does all metadata.
Status UringEnv::NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) {
  return base_->NewSequentialFile(fname, result);
}
Status UringEnv::NewRandomRWFile(const std::string& fname,
                                 std::unique_ptr<RandomRWFile>* result) {
  return base_->NewRandomRWFile(fname, result);
}
bool UringEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}
Status UringEnv::GetChildren(const std::string& dir,
                             std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}
Status UringEnv::RemoveFile(const std::string& fname) {
  return base_->RemoveFile(fname);
}
Status UringEnv::CreateDir(const std::string& dirname) {
  return base_->CreateDir(dirname);
}
Status UringEnv::RemoveDir(const std::string& dirname) {
  return base_->RemoveDir(dirname);
}
Status UringEnv::RemoveDirRecursive(const std::string& dirname) {
  return base_->RemoveDirRecursive(dirname);
}
Status UringEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return base_->GetFileSize(fname, size);
}
Status UringEnv::RenameFile(const std::string& src,
                            const std::string& target) {
  return base_->RenameFile(src, target);
}
uint64_t UringEnv::NowMicros() { return base_->NowMicros(); }
void UringEnv::SleepForMicroseconds(uint64_t micros) {
  base_->SleepForMicroseconds(micros);
}

}  // namespace blsm
