#ifndef BLSM_IO_UNBATCHED_ENV_H_
#define BLSM_IO_UNBATCHED_ENV_H_

#include <memory>
#include <string>

#include "io/env.h"

namespace blsm {

// Decorator that strips the batched-IO surface from an Env: MultiRead is
// forced back to the one-synchronous-Read-per-request default and readahead
// hints are dropped. Benchmarks and parity tests wrap an env in this to get
// the "synchronous baseline" lane with everything else held identical.

namespace unbatched_internal {

class UnbatchedRandomAccessFile final : public RandomAccessFile {
 public:
  explicit UnbatchedRandomAccessFile(std::unique_ptr<RandomAccessFile> base)
      : base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    return base_->Read(offset, n, result, scratch);
  }
  Status MultiRead(ReadRequest* reqs, size_t n) const override {
    // The serial default loop, deliberately not forwarded to the base.
    return RandomAccessFile::MultiRead(reqs, n);
  }
  void ReadAheadHint(uint64_t offset, uint64_t len) const override {
    (void)offset;
    (void)len;
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
};

}  // namespace unbatched_internal

class UnbatchedEnv final : public Env {
 public:
  explicit UnbatchedEnv(Env* base) : base_(base) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    std::unique_ptr<RandomAccessFile> file;
    Status s = base_->NewRandomAccessFile(fname, &file);
    if (!s.ok()) return s;
    *result = std::make_unique<unbatched_internal::UnbatchedRandomAccessFile>(
        std::move(file));
    return Status::OK();
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    return base_->NewWritableFile(fname, result);
  }
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override {
    return base_->NewRandomRWFile(fname, result);
  }

  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status RemoveDirRecursive(const std::string& dirname) override {
    return base_->RemoveDirRecursive(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  uint64_t NowMicros() override { return base_->NowMicros(); }
  void SleepForMicroseconds(uint64_t micros) override {
    base_->SleepForMicroseconds(micros);
  }
  const EnvIoCounters* io_counters() const override {
    return base_->io_counters();
  }

 private:
  Env* base_;
};

}  // namespace blsm

#endif  // BLSM_IO_UNBATCHED_ENV_H_
