#ifndef BLSM_IO_FAULT_INJECTION_ENV_H_
#define BLSM_IO_FAULT_INJECTION_ENV_H_

#include <atomic>
#include <memory>
#include <string>

#include "io/env.h"

namespace blsm {

// Env decorator that injects I/O failures: after `TripAfter(n)` further
// operations, every subsequent data-path call (reads, writes, syncs, file
// creation, rename) fails with IOError until `Heal()` is called. Used by the
// failure-injection tests to verify that background errors surface, writes
// are refused afterwards, and recovery works once the device "comes back".
//
// Metadata queries (FileExists, GetChildren, GetFileSize) and the clock are
// not failed: a broken disk still answers stat-ish queries in practice, and
// failing them mostly tests the test.
class FaultInjectionEnv final : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // Arms the fault: the next `ops` data operations succeed, everything
  // after fails.
  void TripAfter(uint64_t ops) {
    remaining_.store(static_cast<int64_t>(ops), std::memory_order_relaxed);
    armed_.store(true, std::memory_order_relaxed);
  }

  // Clears the fault; subsequent operations succeed again.
  void Heal() { armed_.store(false, std::memory_order_relaxed); }

  bool tripped() const {
    return armed_.load(std::memory_order_relaxed) &&
           remaining_.load(std::memory_order_relaxed) <= 0;
  }

  uint64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override;

  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override;

  uint64_t NowMicros() override { return base_->NowMicros(); }
  void SleepForMicroseconds(uint64_t micros) override {
    base_->SleepForMicroseconds(micros);
  }

  // Returns OK while healthy; decrements the countdown and returns IOError
  // once tripped. Exposed for the file wrappers.
  Status Check();

 private:
  Env* base_;
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> remaining_{0};
  std::atomic<uint64_t> faults_{0};
};

}  // namespace blsm

#endif  // BLSM_IO_FAULT_INJECTION_ENV_H_
