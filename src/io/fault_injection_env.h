#ifndef BLSM_IO_FAULT_INJECTION_ENV_H_
#define BLSM_IO_FAULT_INJECTION_ENV_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "io/env.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace blsm {

// The operation classes the injector distinguishes. Real devices fail these
// differently (a dying disk often reads fine long after writes start
// erroring), so each class gets its own probability knob.
enum class FaultOpClass {
  kRead,      // SequentialFile/RandomAccessFile/RandomRWFile reads
  kWrite,     // Append / positional Write
  kSync,      // fsync
  kOpen,      // file creation / opening
  kMetadata,  // RemoveFile, CreateDir, RenameFile
};

// Probabilistic fault model, driven by a seeded RNG so failures are
// reproducible. All probabilities are in [0, 1] and independent per
// operation. The deterministic TripAfter() countdown is separate and is
// checked first; it models a device that dies outright, while the policy
// models a device (or kernel, or firmware) that lies and flakes.
struct FaultPolicy {
  uint64_t seed = 0;

  // Clean, detectable failures: the call returns IOError and has no effect.
  double read_error_prob = 0.0;
  double write_error_prob = 0.0;
  double sync_error_prob = 0.0;
  double open_error_prob = 0.0;
  double metadata_error_prob = 0.0;

  // Torn write: a uniformly random strict prefix of the Append payload is
  // persisted, then the call reports IOError — the classic partial sector
  // write of a power cut mid-DMA.
  double torn_write_prob = 0.0;

  // Silent faults. These REPORT SUCCESS: the only defenses are checksums
  // (bit flips) and crash-recovery discipline (a swallowed fsync surfaces
  // when DropUnsynced discards the data that was claimed durable).
  double bit_flip_prob = 0.0;      // one random bit of the payload flips
  double swallow_sync_prob = 0.0;  // Sync() returns OK without syncing

  // When set, only files for which this returns true are subject to the
  // silent faults above. Error faults (and TripAfter) ignore the filter:
  // a detectable failure is fair game anywhere, but tests often need to
  // keep silent lies away from files whose integrity protocol is the
  // subject of a different test (e.g. the manifest).
  std::function<bool(const std::string& fname)> silent_fault_filter;

  bool AnyProbabilistic() const {
    return read_error_prob > 0 || write_error_prob > 0 ||
           sync_error_prob > 0 || open_error_prob > 0 ||
           metadata_error_prob > 0 || torn_write_prob > 0 ||
           bit_flip_prob > 0 || swallow_sync_prob > 0;
  }
};

// Env decorator that injects I/O failures. Two mechanisms compose:
//
//  * TripAfter(n): after `n` further operations, every data-path call
//    (reads, writes, syncs, file creation, rename, remove, mkdir) fails
//    with IOError until Heal() — a device that dies outright.
//  * SetPolicy(FaultPolicy): seeded probabilistic faults per operation
//    class, including torn writes, silent bit flips, and swallowed syncs —
//    a device that flakes and lies.
//
// Heal() clears both. Benign metadata queries (FileExists, GetChildren,
// GetFileSize) and the clock are never failed: a broken disk still answers
// stat-ish queries in practice, and failing them mostly tests the test.
class FaultInjectionEnv final : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // Arms the deterministic fault: the next `ops` data operations succeed,
  // everything after fails.
  void TripAfter(uint64_t ops) {
    remaining_.store(static_cast<int64_t>(ops), std::memory_order_relaxed);
    armed_.store(true, std::memory_order_relaxed);
  }

  // Installs (replacing) the probabilistic fault policy.
  void SetPolicy(const FaultPolicy& policy);

  // Clears every fault source; subsequent operations succeed again.
  void Heal();

  bool tripped() const {
    return armed_.load(std::memory_order_relaxed) &&
           remaining_.load(std::memory_order_relaxed) <= 0;
  }

  // Counters, for tests to assert that the intended faults actually fired.
  uint64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }
  uint64_t torn_writes() const {
    return torn_writes_.load(std::memory_order_relaxed);
  }
  uint64_t bit_flips() const {
    return bit_flips_.load(std::memory_order_relaxed);
  }
  uint64_t swallowed_syncs() const {
    return swallowed_syncs_.load(std::memory_order_relaxed);
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override;

  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  // Recursion uses the base-class GetChildren walk, so each RemoveFile /
  // RemoveDir along the way rolls the metadata fault dice individually.
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override;

  uint64_t NowMicros() override { return base_->NowMicros(); }
  void SleepForMicroseconds(uint64_t micros) override {
    base_->SleepForMicroseconds(micros);
  }
  const EnvIoCounters* io_counters() const override {
    return base_->io_counters();
  }

  // Returns OK while healthy; decrements the deterministic countdown and
  // returns IOError once tripped. Exposed for the file wrappers.
  Status Check();

  // Deterministic check plus the probabilistic per-class error roll.
  Status CheckOp(FaultOpClass op, const std::string& fname);

  // Decision for one Append of `len` bytes. Exactly one of the fields is
  // meaningful: if !status.ok() and torn_len > 0, persist that prefix then
  // fail; if flip_bit >= 0, flip that bit of the payload and succeed.
  struct WritePlan {
    Status status;
    size_t torn_len = 0;
    int64_t flip_bit = -1;
  };
  WritePlan PlanAppend(const std::string& fname, size_t len);

  // Decision for one Sync: fail, silently swallow, or pass through.
  struct SyncPlan {
    Status status;
    bool swallow = false;
  };
  SyncPlan PlanSync(const std::string& fname);

 private:
  bool Roll(double prob);  // true with probability `prob` (seeded RNG)
  bool SilentFaultsApply(const std::string& fname);

  Env* base_;
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> remaining_{0};
  std::atomic<uint64_t> faults_{0};
  std::atomic<uint64_t> torn_writes_{0};
  std::atomic<uint64_t> bit_flips_{0};
  std::atomic<uint64_t> swallowed_syncs_{0};

  util::Mutex policy_mu_{util::lock_rank::kFaultInjectionEnvPolicyMu};
  FaultPolicy policy_ GUARDED_BY(policy_mu_);
  std::atomic<bool> policy_active_{false};
  Random rng_ GUARDED_BY(policy_mu_) = Random(0);
};

}  // namespace blsm

#endif  // BLSM_IO_FAULT_INJECTION_ENV_H_
