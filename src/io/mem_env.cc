#include "io/mem_env.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace blsm {

struct MemEnv::FileState {
  util::Mutex mu{util::lock_rank::kFileStateMu};
  std::string data GUARDED_BY(mu);
  size_t synced_len GUARDED_BY(mu) = 0;
};

namespace {

using FileStatePtr = std::shared_ptr<MemEnv::FileState>;

}  // namespace

// --- file implementations ---------------------------------------------------

namespace {

class MemSequentialFile final : public SequentialFile {
 public:
  explicit MemSequentialFile(FileStatePtr fs) : fs_(std::move(fs)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    util::MutexLock l(&fs_->mu);
    size_t avail = fs_->data.size() - std::min(pos_, fs_->data.size());
    size_t len = std::min(n, avail);
    memcpy(scratch, fs_->data.data() + pos_, len);
    pos_ += len;
    *result = Slice(scratch, len);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ += n;
    return Status::OK();
  }

 private:
  FileStatePtr fs_;
  size_t pos_ = 0;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  MemRandomAccessFile(FileStatePtr fs, EnvIoCounters* counters)
      : fs_(std::move(fs)), counters_(counters) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    util::MutexLock l(&fs_->mu);
    if (offset >= fs_->data.size()) {
      *result = Slice(scratch, 0);
      return Status::OK();
    }
    size_t len = std::min(n, fs_->data.size() - static_cast<size_t>(offset));
    memcpy(scratch, fs_->data.data() + offset, len);
    *result = Slice(scratch, len);
    tracker_.OnRead(offset, counters_);
    counters_->read_bytes.fetch_add(len, std::memory_order_relaxed);
    return Status::OK();
  }

  Status MultiRead(ReadRequest* reqs, size_t n) const override {
    counters_->multiread_batches.fetch_add(1, std::memory_order_relaxed);
    counters_->multiread_requests.fetch_add(n, std::memory_order_relaxed);
    // Memory is already "batched"; the serial default just does the copies.
    return RandomAccessFile::MultiRead(reqs, n);
  }

  void ReadAheadHint(uint64_t offset, uint64_t len) const override {
    tracker_.Hint(offset, len, counters_);
  }

 private:
  FileStatePtr fs_;
  EnvIoCounters* counters_;
  mutable ReadAheadTracker tracker_;
};

class MemWritableFile final : public WritableFile {
 public:
  MemWritableFile(FileStatePtr fs, EnvIoCounters* counters)
      : fs_(std::move(fs)), counters_(counters) {}

  Status Append(const Slice& data) override {
    util::MutexLock l(&fs_->mu);
    fs_->data.append(data.data(), data.size());
    counters_->write_bytes.fetch_add(data.size(), std::memory_order_relaxed);
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    util::MutexLock l(&fs_->mu);
    fs_->synced_len = fs_->data.size();
    counters_->syncs.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  FileStatePtr fs_;
  EnvIoCounters* counters_;
};

class MemRandomRWFile final : public RandomRWFile {
 public:
  explicit MemRandomRWFile(FileStatePtr fs) : fs_(std::move(fs)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    util::MutexLock l(&fs_->mu);
    if (offset >= fs_->data.size()) {
      *result = Slice(scratch, 0);
      return Status::OK();
    }
    size_t len = std::min(n, fs_->data.size() - static_cast<size_t>(offset));
    memcpy(scratch, fs_->data.data() + offset, len);
    *result = Slice(scratch, len);
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override {
    util::MutexLock l(&fs_->mu);
    size_t end = static_cast<size_t>(offset) + data.size();
    if (fs_->data.size() < end) fs_->data.resize(end, '\0');
    memcpy(fs_->data.data() + offset, data.data(), data.size());
    return Status::OK();
  }

  Status Sync() override {
    util::MutexLock l(&fs_->mu);
    fs_->synced_len = fs_->data.size();
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  FileStatePtr fs_;
};

}  // namespace

// --- env --------------------------------------------------------------------

MemEnv::MemEnv() = default;
MemEnv::~MemEnv() = default;

Status MemEnv::NewSequentialFile(const std::string& fname,
                                 std::unique_ptr<SequentialFile>* result) {
  util::MutexLock l(&mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) return Status::NotFound(fname);
  *result = std::make_unique<MemSequentialFile>(it->second);
  return Status::OK();
}

Status MemEnv::NewRandomAccessFile(const std::string& fname,
                                   std::unique_ptr<RandomAccessFile>* result) {
  util::MutexLock l(&mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) return Status::NotFound(fname);
  *result = std::make_unique<MemRandomAccessFile>(it->second, &counters_);
  return Status::OK();
}

Status MemEnv::NewWritableFile(const std::string& fname,
                               std::unique_ptr<WritableFile>* result) {
  util::MutexLock l(&mu_);
  auto fs = std::make_shared<FileState>();
  files_[fname] = fs;
  *result = std::make_unique<MemWritableFile>(std::move(fs), &counters_);
  return Status::OK();
}

Status MemEnv::NewRandomRWFile(const std::string& fname,
                               std::unique_ptr<RandomRWFile>* result) {
  util::MutexLock l(&mu_);
  auto it = files_.find(fname);
  std::shared_ptr<FileState> fs;
  if (it == files_.end()) {
    fs = std::make_shared<FileState>();
    files_[fname] = fs;
  } else {
    fs = it->second;
  }
  *result = std::make_unique<MemRandomRWFile>(std::move(fs));
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& fname) {
  util::MutexLock l(&mu_);
  return files_.count(fname) > 0;
}

Status MemEnv::GetChildren(const std::string& dir,
                           std::vector<std::string>* result) {
  util::MutexLock l(&mu_);
  result->clear();
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  for (const auto& [name, fs] : files_) {
    (void)fs;
    if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
      std::string rest = name.substr(prefix.size());
      if (rest.find('/') == std::string::npos) result->push_back(rest);
    }
  }
  return Status::OK();
}

Status MemEnv::RemoveFile(const std::string& fname) {
  util::MutexLock l(&mu_);
  if (files_.erase(fname) == 0) return Status::NotFound(fname);
  return Status::OK();
}

Status MemEnv::CreateDir(const std::string& dirname) {
  util::MutexLock l(&mu_);
  dirs_.insert(dirname);
  return Status::OK();
}

Status MemEnv::RemoveDir(const std::string& dirname) {
  util::MutexLock l(&mu_);
  if (dirs_.erase(dirname) == 0) return Status::NotFound(dirname);
  return Status::OK();
}

Status MemEnv::RemoveDirRecursive(const std::string& dirname) {
  util::MutexLock l(&mu_);
  std::string prefix = dirname;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = files_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = dirs_.begin(); it != dirs_.end();) {
    if (*it == dirname || it->compare(0, prefix.size(), prefix) == 0) {
      it = dirs_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Status MemEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  util::MutexLock l(&mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) {
    *size = 0;
    return Status::NotFound(fname);
  }
  util::MutexLock fl(&it->second->mu);
  *size = it->second->data.size();
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& src, const std::string& target) {
  util::MutexLock l(&mu_);
  auto it = files_.find(src);
  if (it == files_.end()) return Status::NotFound(src);
  files_[target] = it->second;
  files_.erase(it);
  return Status::OK();
}

uint64_t MemEnv::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void MemEnv::SleepForMicroseconds(uint64_t micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

void MemEnv::DropUnsynced() {
  util::MutexLock l(&mu_);
  for (auto& [name, fs] : files_) {
    (void)name;
    util::MutexLock fl(&fs->mu);
    fs->data.resize(fs->synced_len);
  }
}

}  // namespace blsm
