#ifndef BLSM_IO_ENV_H_
#define BLSM_IO_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace blsm {

// File and environment abstraction. Every engine in this repository performs
// its I/O through an Env so that (a) tests can run against an in-memory
// filesystem and (b) benchmarks can run against a CountingEnv that classifies
// each access as a seek or a sequential transfer — the unit the paper's
// analysis is written in (§2.1).

// Sequential read-only file (log recovery, merges).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  // Reads up to n bytes. Sets *result to the data read (may point into
  // scratch). Returns OK with an empty result at end of file.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

// One read in a MultiRead batch. `scratch` is caller-owned and must hold at
// least `len` bytes; on completion `result` points at the bytes read (into
// scratch) and `status` carries this request's individual outcome. A read
// past EOF is OK with a short (possibly empty) result, matching Read().
struct ReadRequest {
  uint64_t offset = 0;
  size_t len = 0;
  char* scratch = nullptr;
  Slice result;
  Status status;
};

// Random-access read-only file (tree component reads).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;

  // Batched reads: fills reqs[0..n)'s result/status fields. The returned
  // Status reflects submission of the batch as a whole — it is OK even when
  // individual requests fail, so one bad sub-read never poisons its
  // batchmates; callers must check each reqs[i].status. The default issues
  // the requests one synchronous Read at a time; environments that can
  // batch (io_uring, preadv coalescing) override it.
  virtual Status MultiRead(ReadRequest* reqs, size_t n) const;

  // Advisory prefetch: the caller expects to Read [offset, offset+len)
  // soon. Never fails and may do nothing (the default). Implementations
  // typically hand the range to the kernel readahead machinery.
  virtual void ReadAheadHint(uint64_t offset, uint64_t len) const {
    (void)offset;
    (void)len;
  }
};

// Append-only writable file (logs, tree component builds).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;

  // Gathered append: parts[0..n) land back to back, as if Append()ed in
  // order. One call gives alignment-aware backends (O_DIRECT with an
  // aligned buffer pool) the whole payload at once instead of fragment by
  // fragment. Default: an Append loop.
  virtual Status AppendV(const Slice* parts, size_t n) {
    for (size_t i = 0; i < n; i++) {
      Status s = Append(parts[i]);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  // The append granularity this file performs best at; pre-sizing buffers
  // to a multiple of it lets the backend write without re-buffering. 1
  // means "no preference" (plain buffered POSIX). Direct-IO backends
  // report their sector/page alignment.
  virtual size_t PreferredAppendAlignment() const { return 1; }

  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

// Read/write file with positional access (update-in-place B-tree pages).
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;

  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  virtual Status Write(uint64_t offset, const Slice& data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

// Cumulative data-path totals owned by a terminal Env implementation
// (posix, uring, mem). Decorator Envs forward io_counters() to their base,
// so whatever wrapper stack an engine runs on, Engine::Stats() reports the
// totals of the environment that actually touched the bytes.
struct EnvIoCounters {
  std::atomic<uint64_t> read_bytes{0};
  std::atomic<uint64_t> write_bytes{0};
  std::atomic<uint64_t> syncs{0};
  // MultiRead calls that reached this Env (each covering >= 1 requests).
  std::atomic<uint64_t> multiread_batches{0};
  std::atomic<uint64_t> multiread_requests{0};
  // Reads that landed inside a previously hinted range — how often
  // ReadAheadHint actually fronted a later access.
  std::atomic<uint64_t> readahead_hits{0};
  std::atomic<uint64_t> readahead_hints{0};
  // Writes submitted as ring SQEs (vs synchronous pwrite), and direct-IO
  // writers that hit a mid-stream EINVAL and re-opened buffered.
  std::atomic<uint64_t> ring_writes{0};
  std::atomic<uint64_t> direct_write_fallbacks{0};
};

// Per-file helper for the readahead_hits counter: remembers the most recent
// hinted range (hints from sequential scans advance monotonically, so one
// range is enough) and classifies later reads against it.
class ReadAheadTracker {
 public:
  void Hint(uint64_t offset, uint64_t len, EnvIoCounters* counters) {
    if (counters != nullptr) {
      counters->readahead_hints.fetch_add(1, std::memory_order_relaxed);
    }
    start_.store(offset, std::memory_order_relaxed);
    end_.store(offset + len, std::memory_order_relaxed);
  }
  void OnRead(uint64_t offset, EnvIoCounters* counters) const {
    if (counters == nullptr) return;
    if (offset >= start_.load(std::memory_order_relaxed) &&
        offset < end_.load(std::memory_order_relaxed)) {
      counters->readahead_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }

 private:
  std::atomic<uint64_t> start_{1};
  std::atomic<uint64_t> end_{0};  // empty range until the first hint
};

class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  virtual Status NewRandomRWFile(const std::string& fname,
                                 std::unique_ptr<RandomRWFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  // Removes an empty directory; NotFound if it does not exist.
  virtual Status RemoveDir(const std::string& dirname) = 0;
  // Removes `dirname` and everything under it, to any depth. A missing
  // directory is success (the desired state already holds). The default
  // walks GetChildren depth-first; environments whose GetChildren does not
  // surface subdirectories (MemEnv) override it.
  virtual Status RemoveDirRecursive(const std::string& dirname);
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  virtual uint64_t NowMicros() = 0;
  virtual void SleepForMicroseconds(uint64_t micros) = 0;

  // Data-path totals for this environment, or nullptr when untracked.
  // Decorators forward to their base so the terminal Env's counters are
  // visible through any wrapper stack.
  virtual const EnvIoCounters* io_counters() const { return nullptr; }

  // Process-wide default environment (POSIX). Never deleted.
  static Env* Default();
};

// Convenience helpers.
Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname,
                         bool sync);
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

}  // namespace blsm

#endif  // BLSM_IO_ENV_H_
