#ifndef BLSM_IO_ENV_H_
#define BLSM_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace blsm {

// File and environment abstraction. Every engine in this repository performs
// its I/O through an Env so that (a) tests can run against an in-memory
// filesystem and (b) benchmarks can run against a CountingEnv that classifies
// each access as a seek or a sequential transfer — the unit the paper's
// analysis is written in (§2.1).

// Sequential read-only file (log recovery, merges).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  // Reads up to n bytes. Sets *result to the data read (may point into
  // scratch). Returns OK with an empty result at end of file.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

// Random-access read-only file (tree component reads).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
};

// Append-only writable file (logs, tree component builds).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

// Read/write file with positional access (update-in-place B-tree pages).
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;

  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  virtual Status Write(uint64_t offset, const Slice& data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  virtual Status NewRandomRWFile(const std::string& fname,
                                 std::unique_ptr<RandomRWFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  // Removes an empty directory; NotFound if it does not exist.
  virtual Status RemoveDir(const std::string& dirname) = 0;
  // Removes `dirname` and everything under it, to any depth. A missing
  // directory is success (the desired state already holds). The default
  // walks GetChildren depth-first; environments whose GetChildren does not
  // surface subdirectories (MemEnv) override it.
  virtual Status RemoveDirRecursive(const std::string& dirname);
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  virtual uint64_t NowMicros() = 0;
  virtual void SleepForMicroseconds(uint64_t micros) = 0;

  // Process-wide default environment (POSIX). Never deleted.
  static Env* Default();
};

// Convenience helpers.
Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname,
                         bool sync);
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

}  // namespace blsm

#endif  // BLSM_IO_ENV_H_
