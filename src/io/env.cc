#include "io/env.h"

namespace blsm {

Status RandomAccessFile::MultiRead(ReadRequest* reqs, size_t n) const {
  for (size_t i = 0; i < n; i++) {
    reqs[i].status =
        Read(reqs[i].offset, reqs[i].len, &reqs[i].result, reqs[i].scratch);
  }
  return Status::OK();
}

Status Env::RemoveDirRecursive(const std::string& dirname) {
  std::vector<std::string> children;
  Status s = GetChildren(dirname, &children);
  if (s.IsNotFound()) return Status::OK();
  if (!s.ok()) return s;
  for (const auto& child : children) {
    std::string path = dirname + "/" + child;
    Status rs = RemoveFile(path);
    if (!rs.ok()) {
      // Not a plain file (or already gone): treat it as a subdirectory.
      rs = RemoveDirRecursive(path);
      if (!rs.ok()) return rs;
    }
  }
  return RemoveDir(dirname);
}

Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname,
                         bool sync) {
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(data);
  if (s.ok() && sync) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) {
    env->RemoveFile(fname).IgnoreError(
        "best-effort cleanup; the write failure below is the real error");
  }
  return s;
}

Status ReadFileToString(Env* env, const std::string& fname, std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  static const size_t kBufferSize = 64 << 10;
  std::string scratch(kBufferSize, '\0');
  while (true) {
    Slice fragment;
    s = file->Read(kBufferSize, &fragment, scratch.data());
    if (!s.ok()) break;
    if (fragment.empty()) break;
    data->append(fragment.data(), fragment.size());
  }
  return s;
}

}  // namespace blsm
