#ifndef BLSM_IO_URING_ENV_H_
#define BLSM_IO_URING_ENV_H_

#include <memory>
#include <string>

#include "io/env.h"

namespace blsm {

// Knobs for the io_uring environment. Defaults favor portability: buffered
// page-cache reads with batched submission. direct_io turns on O_DIRECT for
// data reads, served through a per-file aligned-buffer pool (registered
// with the ring) so callers keep the byte-granular Read/MultiRead contract
// while the device sees only sector-aligned transfers.
struct UringEnvOptions {
  unsigned queue_depth = 32;  // SQ entries per file ring (batched SQEs)
  bool direct_io = false;
  // Alignment unit for the direct-IO path (offset, length, and buffer
  // address rounding). 4096 covers every current sector size.
  size_t direct_io_alignment = 4096;
  // Test hook: forge EINVAL on the Nth direct write of each writable file
  // (-1 = never), exercising the mid-stream buffered fallback that real
  // filesystems only trigger on exotic mounts.
  int direct_write_einval_after = -1;
};

// Env backed by io_uring (raw syscalls; no liburing dependency): each
// random-access file owns a submission/completion ring, so a MultiRead of N
// blocks is one batched SQE submission + one io_uring_enter instead of N
// pread syscalls. Metadata operations and sequential files delegate to
// `base` (Env::Default() when null).
//
// Fallback matrix (every row keeps the full Env contract):
//   * kernel without io_uring / sandboxed io_uring_setup  -> pure
//     pass-through to `base` (the preadv-batching posix env);
//   * ring creation fails for one file (fd/memlock limits) -> that file
//     alone falls back to `base`;
//   * filesystem rejects O_DIRECT (tmpfs)                  -> that file
//     reopens buffered, ring submission retained.
// using_uring() reports which side of the first fork this env landed on.
class UringEnv final : public Env {
 public:
  explicit UringEnv(Env* base = nullptr, UringEnvOptions options = {});
  ~UringEnv() override;
  UringEnv(const UringEnv&) = delete;
  UringEnv& operator=(const UringEnv&) = delete;

  // True when this kernel accepts io_uring_setup and completes an
  // IORING_OP_READ (one probe per process, cached). False on non-Linux
  // builds, pre-5.6 kernels, and seccomp jails that deny the syscalls.
  static bool Supported();

  bool using_uring() const { return uring_ok_; }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* result) override;

  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status RemoveDirRecursive(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  uint64_t NowMicros() override;
  void SleepForMicroseconds(uint64_t micros) override;

  const EnvIoCounters* io_counters() const override;

 private:
  Env* base_;
  UringEnvOptions options_;
  bool uring_ok_;
  EnvIoCounters counters_;
};

}  // namespace blsm

#endif  // BLSM_IO_URING_ENV_H_
