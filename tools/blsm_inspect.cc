// blsm_inspect: offline inspection of a bLSM database directory. Reads the
// manifest, opens each component read-only, and prints the tree's shape —
// without starting the engine (no merge threads, no log truncation).
//
//   blsm_inspect <dbdir>              summary
//   blsm_inspect <dbdir> --keys N     ... plus the first N user keys per
//                                     component
//   blsm_inspect <dbdir> --log        ... plus a logical-log summary
//   blsm_inspect verify <dbdir>       read and checksum every block of every
//                                     component plus the WAL; exit non-zero
//                                     iff damage is found, naming each
//                                     damaged file and block offset
//   blsm_inspect stats <dbdir> [--engine NAME]
//                                     open the engine read-only through the
//                                     kv registry (default: blsm) and dump
//                                     its full counter map
//   blsm_inspect io <dbdir> [--engine NAME]
//                                     the io.* slice of the counter map plus
//                                     derived batching/readahead ratios
//   blsm_inspect levels <dbdir>       decode a multilevel manifest (read-only,
//                                     no engine start) and dump the active
//                                     compaction policy plus per-level run
//                                     counts, bytes, and layout
//   blsm_inspect server-stats <host:port>
//                                     fetch a live blsm_server's counter map
//                                     over the wire protocol: server.* front-
//                                     end counters first, then the summed
//                                     engine counters of every shard

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "engine/compaction_policy.h"
#include "engine/kv.h"
#include "io/env.h"
#include "lsm/manifest.h"
#include "lsm/record.h"
#include "multilevel/version.h"
#include "server/client.h"
#include "sstree/tree_reader.h"
#include "wal/logical_log.h"

namespace {

const char* SlotName(blsm::Manifest::Slot slot) {
  switch (slot) {
    case blsm::Manifest::Slot::kC1:
      return "C1";
    case blsm::Manifest::Slot::kC1Prime:
      return "C1'";
    case blsm::Manifest::Slot::kC2:
      return "C2";
  }
  return "?";
}

// `blsm_inspect verify <dbdir>`: every block of every manifest-referenced
// component is read and checksummed (bypassing any cache), then the WAL is
// replayed. Exit status: 0 = clean, 1 = damage found. A truncated WAL tail
// is reported as a crash artifact, not damage — recovery handles it by
// design, so a db that merely crashed verifies clean.
int RunVerify(const std::string& dir) {
  using namespace blsm;
  Env* env = Env::Default();
  Manifest manifest;
  Status s = Manifest::Load(env, dir, &manifest);
  if (!s.ok()) {
    fprintf(stderr, "DAMAGED manifest: %s\n", s.ToString().c_str());
    return 1;
  }

  int damaged = 0;
  printf("verifying %zu component(s) in %s\n", manifest.components.size(),
         dir.c_str());
  for (const auto& entry : manifest.components) {
    std::string fname = Manifest::TreeFileName(dir, entry.file_number);
    std::unique_ptr<sstree::TreeReader> reader;
    s = sstree::TreeReader::Open(env, /*cache=*/nullptr, entry.file_number,
                                 fname, &reader);
    if (!s.ok()) {
      printf("  %-4s %s: DAMAGED (unopenable: %s)\n", SlotName(entry.slot),
             fname.c_str(), s.ToString().c_str());
      damaged++;
      continue;
    }
    uint64_t bad_offset = 0;
    s = reader->VerifyAllBlocks(&bad_offset);
    if (!s.ok()) {
      printf("  %-4s %s: DAMAGED at offset %" PRIu64 " (%s)\n",
             SlotName(entry.slot), fname.c_str(), bad_offset,
             s.ToString().c_str());
      damaged++;
    } else {
      printf("  %-4s %s: OK (%" PRIu64 " entries)\n", SlotName(entry.slot),
             fname.c_str(), reader->num_entries());
    }
  }

  // The WAL: records that pass the frame CRC but fail to decode are damage;
  // bytes the reader skipped (a torn tail, CRC-failed frames) are the
  // expected residue of a crash — recovery drops them by design — so they
  // are reported but do not fail the verify.
  std::string log_path = Manifest::LogFileName(dir);
  if (env->FileExists(log_path)) {
    std::unique_ptr<SequentialFile> log_file;
    s = env->NewSequentialFile(log_path, &log_file);
    if (!s.ok()) {
      printf("  WAL  %s: DAMAGED (unopenable: %s)\n", log_path.c_str(),
             s.ToString().c_str());
      damaged++;
    } else {
      wal::LogReader log_reader(std::move(log_file));
      uint64_t records = 0;
      bool decode_ok = true;
      Slice payload;
      std::string scratch;
      while (log_reader.ReadRecord(&payload, &scratch)) {
        Slice in = payload;
        DecodedRecord rec;
        ParsedInternalKey parsed;
        if (!DecodeRecord(&in, &rec) ||
            !ParseInternalKey(rec.internal_key, &parsed)) {
          decode_ok = false;
          break;
        }
        records++;
      }
      if (!decode_ok) {
        printf("  WAL  %s: DAMAGED (malformed record after %" PRIu64
               " good records)\n",
               log_path.c_str(), records);
        damaged++;
      } else if (log_reader.dropped_bytes() > 0) {
        printf("  WAL  %s: OK (%" PRIu64 " records; %" PRIu64
               " bytes of crash residue skipped)\n",
               log_path.c_str(), records, log_reader.dropped_bytes());
      } else {
        printf("  WAL  %s: OK (%" PRIu64 " records)\n", log_path.c_str(),
               records);
      }
    }
  }

  // Orphans: files no manifest entry references. Not damage (recovery
  // scavenges them), but worth reporting — they are the residue of a merge
  // that died mid-write.
  std::vector<std::string> children;
  if (env->GetChildren(dir, &children).ok()) {
    for (const std::string& name : children) {
      if (name.size() > 5 && name.substr(name.size() - 5) == ".tree") {
        uint64_t num = strtoull(name.c_str(), nullptr, 10);
        bool referenced = false;
        for (const auto& entry : manifest.components) {
          if (entry.file_number == num) referenced = true;
        }
        if (!referenced) {
          printf("  note: orphan file %s (unreferenced; open-time recovery "
                 "will remove it)\n",
                 name.c_str());
        }
      }
    }
  }

  if (damaged > 0) {
    printf("verify FAILED: %d damaged file(s)\n", damaged);
    return 1;
  }
  printf("verify OK\n");
  return 0;
}

// `blsm_inspect stats <dbdir> [--engine NAME]`: opens the engine read-only
// through the kv registry — no background threads, no recovery rewrites —
// and dumps its counter map. The counters reflect the freshly-opened state
// (lifetime counters are not persisted), so this mostly reports the shape
// recovery reconstructed: component sizes, level file counts, log replay.
int RunStats(const std::string& dir, const std::string& engine_name) {
  using namespace blsm;
  kv::CommonOptions options;
  options.read_only = true;
  options.durability = DurabilityMode::kNone;
  std::unique_ptr<kv::Engine> engine;
  Status s = kv::Open(engine_name, options, dir, &engine);
  if (!s.ok()) {
    fprintf(stderr, "cannot open %s engine at %s: %s\n", engine_name.c_str(),
            dir.c_str(), s.ToString().c_str());
    return 1;
  }
  printf("%s stats for %s\n", engine->Name().c_str(), dir.c_str());
  for (const auto& [name, value] : engine->Stats()) {
    printf("  %-32s %" PRIu64 "\n", name.c_str(), value);
  }
  return 0;
}

// `blsm_inspect io <dbdir> [--engine NAME]`: the io.* slice of the counter
// map — bytes moved, fsyncs, MultiRead batching, and readahead efficacy of
// the engine's Env stack — plus the derived ratios that make the raw
// counters legible. Counters start at zero on this read-only open, so what
// shows here is the IO that recovery + open itself performed; point it at a
// live workload by scraping kv::Engine::Stats() instead.
int RunIo(const std::string& dir, const std::string& engine_name) {
  using namespace blsm;
  kv::CommonOptions options;
  options.read_only = true;
  options.durability = DurabilityMode::kNone;
  std::unique_ptr<kv::Engine> engine;
  Status s = kv::Open(engine_name, options, dir, &engine);
  if (!s.ok()) {
    fprintf(stderr, "cannot open %s engine at %s: %s\n", engine_name.c_str(),
            dir.c_str(), s.ToString().c_str());
    return 1;
  }
  std::map<std::string, uint64_t> stats = engine->Stats();
  printf("%s io counters for %s\n", engine->Name().c_str(), dir.c_str());
  for (const auto& [name, value] : stats) {
    if (name.rfind("io.", 0) == 0) {
      printf("  %-32s %" PRIu64 "\n", name.c_str(), value);
    }
  }
  uint64_t batches = stats["io.multiread_batches"];
  uint64_t requests = stats["io.multiread_requests"];
  uint64_t hints = stats["io.readahead_hints"];
  uint64_t hits = stats["io.readahead_hits"];
  printf("  %-32s %.2f\n", "derived.requests_per_batch",
         batches != 0 ? static_cast<double>(requests) / batches : 0.0);
  printf("  %-32s %.2f\n", "derived.readahead_hit_rate",
         hints != 0 ? static_cast<double>(hits) / hints : 0.0);
  return 0;
}

// `blsm_inspect levels <dbdir>`: decodes the multilevel tree's CURRENT
// manifest directly — truly read-only, no engine, no threads — and prints
// the compaction config it records plus the per-level shape.
int RunLevels(const std::string& dir) {
  using namespace blsm;
  Env* env = Env::Default();
  std::string blob;
  Status s = ReadFileToString(env, dir + "/CURRENT", &blob);
  if (!s.ok()) {
    fprintf(stderr, "cannot read multilevel manifest at %s/CURRENT: %s\n",
            dir.c_str(), s.ToString().c_str());
    return 1;
  }
  multilevel::ManifestData m;
  s = multilevel::DecodeManifest(blob, &m);
  if (!s.ok()) {
    fprintf(stderr, "cannot decode manifest: %s\n", s.ToString().c_str());
    return 1;
  }

  engine::CompactionConfig config;
  config.layout = static_cast<engine::CompactionLayout>(m.layout);
  config.granularity = static_cast<engine::CompactionGranularity>(
      m.granularity != 0 ? 1 : 0);
  config.tier_runs = m.tier_runs;
  printf("multilevel database at %s\n", dir.c_str());
  printf("  compaction policy: %s\n",
         engine::CompactionConfigName(config).c_str());
  printf("  next file number:  %" PRIu64 "\n", m.next_file_number);
  printf("  last sequence:     %" PRIu64 "\n", m.last_sequence);

  uint64_t runs[multilevel::kNumLevels] = {};
  uint64_t bytes[multilevel::kNumLevels] = {};
  for (const auto& f : m.files) {
    runs[f.level]++;
    bytes[f.level] += f.data_bytes;
  }
  uint64_t total_runs = 0, total_bytes = 0;
  for (int l = 0; l < multilevel::kNumLevels; l++) {
    const char* layout = (m.overlapping_mask >> l) & 1 ? "overlapping"
                                                       : "sorted";
    printf("  L%d: %3" PRIu64 " run(s)  %10.2f MB  [%s]\n", l, runs[l],
           static_cast<double>(bytes[l]) / 1e6, layout);
    total_runs += runs[l];
    total_bytes += bytes[l];
  }
  printf("  totals: %" PRIu64 " run(s), %.2f MB\n", total_runs,
         static_cast<double>(total_bytes) / 1e6);
  return 0;
}

// `blsm_inspect server-stats <host:port>`: one STATS round-trip against a
// live blsm_server. The server.* keys (the front-end's own counters) print
// first; the rest is the sum of every shard's engine counter map.
int RunServerStats(const std::string& target) {
  using namespace blsm;
  size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    fprintf(stderr, "expected <host:port>, got %s\n", target.c_str());
    return 2;
  }
  std::string host = target.substr(0, colon);
  int port = atoi(target.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    fprintf(stderr, "bad port in %s\n", target.c_str());
    return 2;
  }
  std::unique_ptr<server::Client> client;
  Status s = server::Client::Connect(host, static_cast<uint16_t>(port),
                                     &client);
  if (!s.ok()) {
    fprintf(stderr, "cannot connect to %s: %s\n", target.c_str(),
            s.ToString().c_str());
    return 1;
  }
  std::map<std::string, uint64_t> stats;
  s = client->Stats(&stats);
  if (!s.ok()) {
    fprintf(stderr, "STATS request failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("server stats for %s\n", target.c_str());
  for (const auto& [name, value] : stats) {
    if (name.rfind("server.", 0) == 0) {
      printf("  %-32s %" PRIu64 "\n", name.c_str(), value);
    }
  }
  printf("engine stats (summed across shards)\n");
  for (const auto& [name, value] : stats) {
    if (name.rfind("server.", 0) != 0) {
      printf("  %-32s %" PRIu64 "\n", name.c_str(), value);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blsm;

  if (argc < 2) {
    fprintf(stderr,
            "usage: %s <dbdir> [--keys N] [--log]\n"
            "       %s verify <dbdir>\n"
            "       %s stats <dbdir> [--engine NAME]\n"
            "       %s io <dbdir> [--engine NAME]\n"
            "       %s levels <dbdir>\n"
            "       %s server-stats <host:port>\n",
            argv[0], argv[0], argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  if (strcmp(argv[1], "server-stats") == 0) {
    if (argc < 3) {
      fprintf(stderr, "usage: %s server-stats <host:port>\n", argv[0]);
      return 2;
    }
    return RunServerStats(argv[2]);
  }
  if (strcmp(argv[1], "levels") == 0) {
    if (argc < 3) {
      fprintf(stderr, "usage: %s levels <dbdir>\n", argv[0]);
      return 2;
    }
    return RunLevels(argv[2]);
  }
  if (strcmp(argv[1], "verify") == 0) {
    if (argc < 3) {
      fprintf(stderr, "usage: %s verify <dbdir>\n", argv[0]);
      return 2;
    }
    return RunVerify(argv[2]);
  }
  if (strcmp(argv[1], "stats") == 0) {
    if (argc < 3) {
      fprintf(stderr, "usage: %s stats <dbdir> [--engine NAME]\n", argv[0]);
      return 2;
    }
    std::string engine_name = "blsm";
    for (int i = 3; i < argc; i++) {
      if (strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
        engine_name = argv[++i];
      }
    }
    return RunStats(argv[2], engine_name);
  }
  if (strcmp(argv[1], "io") == 0) {
    if (argc < 3) {
      fprintf(stderr, "usage: %s io <dbdir> [--engine NAME]\n", argv[0]);
      return 2;
    }
    std::string engine_name = "blsm";
    for (int i = 3; i < argc; i++) {
      if (strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
        engine_name = argv[++i];
      }
    }
    return RunIo(argv[2], engine_name);
  }
  if (argc >= 3 && strcmp(argv[2], "verify") == 0) {
    return RunVerify(argv[1]);
  }
  std::string dir = argv[1];
  int dump_keys = 0;
  bool dump_log = false;
  for (int i = 2; i < argc; i++) {
    if (strcmp(argv[i], "--keys") == 0 && i + 1 < argc) {
      dump_keys = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--log") == 0) {
      dump_log = true;
    }
  }

  Env* env = Env::Default();
  Manifest manifest;
  Status s = Manifest::Load(env, dir, &manifest);
  if (!s.ok()) {
    fprintf(stderr, "cannot load manifest: %s\n", s.ToString().c_str());
    return 1;
  }

  printf("bLSM database at %s\n", dir.c_str());
  printf("  next file number: %" PRIu64 "\n", manifest.next_file_number);
  printf("  last sequence:    %" PRIu64 "\n", manifest.last_sequence);
  printf("  components:       %zu\n\n", manifest.components.size());

  uint64_t total_entries = 0, total_bytes = 0;
  for (const auto& entry : manifest.components) {
    std::string fname = Manifest::TreeFileName(dir, entry.file_number);
    std::unique_ptr<sstree::TreeReader> reader;
    s = sstree::TreeReader::Open(env, /*cache=*/nullptr, entry.file_number,
                                 fname, &reader);
    if (!s.ok()) {
      printf("  %-4s %s: UNREADABLE (%s)\n", SlotName(entry.slot),
             fname.c_str(), s.ToString().c_str());
      continue;
    }
    printf("  %-4s %s\n", SlotName(entry.slot), fname.c_str());
    printf("       entries=%-10" PRIu64 " data=%.2f MB  file=%.2f MB  "
           "index-levels=%u  bloom=%s\n",
           reader->num_entries(),
           static_cast<double>(reader->data_bytes()) / 1e6,
           static_cast<double>(reader->file_size()) / 1e6,
           reader->footer().index_levels, reader->has_bloom() ? "yes" : "no");
    total_entries += reader->num_entries();
    total_bytes += reader->data_bytes();

    if (dump_keys > 0) {
      auto it = reader->NewIterator(/*sequential=*/true);
      int n = 0;
      for (it->SeekToFirst(); it->Valid() && n < dump_keys; it->Next(), n++) {
        ParsedInternalKey parsed;
        if (!ParseInternalKey(it->key(), &parsed)) continue;
        const char* type = parsed.type == RecordType::kBase      ? "base"
                           : parsed.type == RecordType::kDelta   ? "delta"
                                                                 : "tomb";
        printf("         %.60s @%" PRIu64 " [%s] %zu bytes\n",
               parsed.user_key.ToString().c_str(), parsed.seq, type,
               it->value().size());
      }
    }
  }
  printf("\n  totals: %" PRIu64 " on-disk records, %.2f MB of data blocks\n",
         total_entries, static_cast<double>(total_bytes) / 1e6);

  if (dump_log) {
    std::map<int, uint64_t> by_type;
    uint64_t records = 0, bytes = 0;
    SequenceNumber min_seq = ~uint64_t{0}, max_seq = 0;
    s = LogicalLog::Replay(env, Manifest::LogFileName(dir),
                           [&](const Slice& key, SequenceNumber seq,
                               RecordType type, const Slice& value) {
                             records++;
                             bytes += key.size() + value.size();
                             by_type[static_cast<int>(type)]++;
                             if (seq < min_seq) min_seq = seq;
                             if (seq > max_seq) max_seq = seq;
                           });
    if (!s.ok()) {
      printf("\n  logical log: unreadable (%s)\n", s.ToString().c_str());
    } else if (records == 0) {
      printf("\n  logical log: empty (C0 was empty at last truncation)\n");
    } else {
      printf("\n  logical log: %" PRIu64 " records (%.2f MB), seq [%" PRIu64
             ", %" PRIu64 "]\n",
             records, static_cast<double>(bytes) / 1e6, min_seq, max_seq);
      printf("    bases=%" PRIu64 " deltas=%" PRIu64 " tombstones=%" PRIu64
             "\n",
             by_type[static_cast<int>(RecordType::kBase)],
             by_type[static_cast<int>(RecordType::kDelta)],
             by_type[static_cast<int>(RecordType::kTombstone)]);
    }
  }
  return 0;
}
