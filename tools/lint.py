#!/usr/bin/env python3
"""Repo-specific source lint: invariants clang-tidy cannot express.

This is the regex tier of the two-tier static-analysis setup: fast, zero
dependencies, runs everywhere. The semantic passes live in tools/analyze/
(see docs/static_analysis.md) and supersede the lock/IO rules here when
their CI lane runs; the regex rules stay for non-clang environments and as
a first line of defense in pre-commit hooks.

Rules (see docs/static_analysis.md):

  raw-lock      Raw std::mutex / std::shared_mutex / std::lock_guard /
                std::unique_lock / std::shared_lock / std::scoped_lock /
                std::condition_variable anywhere outside src/util/. All
                locking goes through the annotated wrappers in
                src/util/mutex.h so Clang's thread-safety analysis sees it.

  libc-unsafe   rand() (unseeded, global-state) and sprintf (unbounded).
                Use util::Random and snprintf.

  bench-include bench/*.cc must not include engine internals (lsm/,
                multilevel/, btree/, engine/ headers) directly; they go
                through bench/harness.h so the engine surface the
                benchmarks exercise stays in one reviewable place.

  read-path-lock  util::MutexLock (or ReaderLock) inside a function named
                Get* / MultiGet in src/lsm/ or src/multilevel/. Point reads
                pin the published ReadView with one atomic load; a mutex on
                that path is the serialization the ReadView design removed.

  write-path-sleep  SleepForMicroseconds / sleep_for in the write-path
                files (src/engine/write_frontend.*, src/lsm/blsm_tree.*,
                src/multilevel/multilevel_tree.*). Stalled writers wait on
                the StallTracker CondVar, signaled on structural change;
                a bare sleep there is the unbounded-latency poll loop this
                repo's backpressure design replaced. The spring's
                proportional one-shot delay is the sanctioned exception
                (annotated with lint:allow at the call site).

  raw-io        pread / pwrite / preadv / pwritev and bare ::read() /
                ::write() anywhere outside src/io/. Every data-path byte
                flows through the Env layer so counters, rate limiting,
                fault injection, and batching all see it; a raw positional
                IO call bypasses all four. Cache-control calls (::open,
                ::fdatasync, ::posix_fadvise) are not data-path and stay
                allowed.

  compaction-pick  Direct version_->levels / version_->LevelBytes access
                inside a Pick* / CompactionPending / RunCompactionPass
                body in src/multilevel/. Compaction decisions are pure
                functions of a CompactionInputs snapshot evaluated by the
                engine::CompactionPolicy layer; the one sanctioned crossing
                is BuildCompactionInputsLocked. Execution (ExecutePick,
                FlushMemtable) may touch the version freely.

All rules scan the comment- and string-stripped text of the whole file
(shared with tools/analyze via cpp_source.clean_source), so a call whose
argument list — or whose opening parenthesis — spans lines is still seen,
and nothing inside strings or commented-out code ever matches.

A finding may be suppressed with a justification on the flagged line or
the line directly above, using either spelling:

    // lint:allow(<rule>) <reason>
    // analyze:allow(<rule>) <reason>

The suppression grammar is shared with tools/analyze so one comment can
satisfy both tiers when their rules overlap. The reason is mandatory; a
bare allow is itself an error.

Exit status 0 when clean; 1 with one "file:line: [rule] message" per
violation otherwise.
"""

import bisect
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from analyze.cpp_source import clean_source  # noqa: E402

SOURCE_DIRS = ["src", "tests", "bench", "examples", "tools"]
SOURCE_SUFFIXES = {".h", ".cc", ".cpp"}

# Whole-text rules: matched against the cleaned file, so `\s*\(` may cross
# a line break (the multi-line call false negative the old per-line scan
# had) and string/comment contents never match.
RAW_LOCK = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock|condition_variable)\b"
)
LIBC_UNSAFE = re.compile(r"(?<![\w:.])(rand|sprintf)\s*\(")
RAW_IO = re.compile(
    r"(?<![\w:.>])(pread|pwrite|preadv|pwritev)\s*\(|::(read|write)\s*\("
)
ENGINE_INTERNAL_INCLUDE = re.compile(
    r'#\s*include\s+"(lsm|multilevel|btree|engine)/'
)
# Out-of-line method definitions at column 0 (Class::Method(...), possibly
# with the return type on the previous line). The read-path and
# compaction-pick rules key off which method body a match falls in: each
# definition opens a region that the next definition closes.
METHOD_DEF = re.compile(
    r"^[\w:<>,&*~ \t]*\b[\w<>]+::(?P<method>~?\w+)\s*\(", re.MULTILINE
)
READ_PATH_LOCK = re.compile(r"\butil::(MutexLock|ReaderLock)\b")
COMPACTION_PICK_ACCESS = re.compile(r"version_->(levels|LevelBytes)\b")
WRITE_PATH_SLEEP = re.compile(r"\b(SleepForMicroseconds|sleep_for)\s*\(")
WRITE_PATH_FILES = (
    "src/engine/write_frontend.",
    "src/lsm/blsm_tree.",
    "src/multilevel/multilevel_tree.",
)


def check(src, rule, line, message, violations, path):
    """Records the violation unless an allow (with a reason) covers it."""
    allow = src.allowed(rule, line)
    if allow is None:
        violations.append((path, line, rule, message))
        return
    if not allow.reason:
        violations.append(
            (path, allow.line, "lint-allow",
             f"{rule} allow needs a reason")
        )


def method_regions(clean):
    """[(start_offset, method_name)] for out-of-line definitions, sorted."""
    return [(m.start(), m.group("method")) for m in METHOD_DEF.finditer(clean)]


def enclosing_method(regions, offset):
    i = bisect.bisect_right([start for start, _ in regions], offset) - 1
    return regions[i][1] if i >= 0 else None


def lint_file(path: Path, violations) -> None:
    rel = path.relative_to(REPO)
    rel_str = str(rel)
    in_util = rel_str.startswith("src/util/")
    in_io = rel_str.startswith("src/io/")
    in_bench_cc = rel_str.startswith("bench/") and path.suffix != ".h"
    in_write_path = rel_str.startswith(WRITE_PATH_FILES)
    in_read_path_dir = rel_str.startswith(("src/lsm/", "src/multilevel/"))
    in_multilevel = rel_str.startswith("src/multilevel/")
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return
    src = clean_source(rel_str, text)
    clean = src.clean

    if not in_util:
        for m in RAW_LOCK.finditer(clean):
            check(src, "raw-lock", src.line_of(m.start()),
                  "raw std lock primitive; use the annotated wrappers "
                  "in src/util/mutex.h", violations, rel_str)
    for m in LIBC_UNSAFE.finditer(clean):
        check(src, "libc-unsafe", src.line_of(m.start()),
              "rand()/sprintf banned; use util::Random / snprintf",
              violations, rel_str)
    if not in_io:
        for m in RAW_IO.finditer(clean):
            check(src, "raw-io", src.line_of(m.start()),
                  "raw positional IO outside src/io/; bytes go through "
                  "the Env layer (counters, limiter, faults, batching)",
                  violations, rel_str)
    if in_write_path:
        for m in WRITE_PATH_SLEEP.finditer(clean):
            check(src, "write-path-sleep", src.line_of(m.start()),
                  "bare sleep in a write-path file; stalls wait on the "
                  "StallTracker CondVar (bounded, signaled on change)",
                  violations, rel_str)
    if in_bench_cc:
        # Include paths are string literals, which the cleaned text blanks,
        # so this rule scans raw lines (with // comments dropped).
        for lineno, line in enumerate(text.splitlines(), start=1):
            code = line.split("//", 1)[0]
            if ENGINE_INTERNAL_INCLUDE.search(code):
                check(src, "bench-include", lineno,
                      "bench sources reach engines via bench/harness.h, "
                      "not engine-internal headers", violations, rel_str)

    if in_read_path_dir:
        regions = method_regions(clean)
        for m in READ_PATH_LOCK.finditer(clean):
            method = enclosing_method(regions, m.start())
            if method is not None and (
                    method.startswith("Get") or method == "MultiGet"):
                check(src, "read-path-lock", src.line_of(m.start()),
                      "mutex in a Get*/MultiGet body; point reads pin "
                      "the ReadView lock-free", violations, rel_str)
        if in_multilevel:
            for m in COMPACTION_PICK_ACCESS.finditer(clean):
                method = enclosing_method(regions, m.start())
                if method is not None and (
                        method.startswith("Pick") or method in (
                            "CompactionPending", "RunCompactionPass")):
                    check(src, "compaction-pick", src.line_of(m.start()),
                          "direct version walk in a compaction decision; "
                          "picks go through engine::CompactionPolicy over "
                          "BuildCompactionInputsLocked", violations, rel_str)


def main() -> int:
    violations = []
    for d in SOURCE_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                lint_file(path, violations)
    for path, lineno, rule, msg in violations:
        print(f"{path}:{lineno}: [{rule}] {msg}")
    if violations:
        print(f"lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
