#!/usr/bin/env python3
"""Repo-specific source lint: invariants clang-tidy cannot express.

Rules (see docs/static_analysis.md):

  raw-lock      Raw std::mutex / std::shared_mutex / std::lock_guard /
                std::unique_lock / std::shared_lock / std::scoped_lock /
                std::condition_variable anywhere outside src/util/. All
                locking goes through the annotated wrappers in
                src/util/mutex.h so Clang's thread-safety analysis sees it.

  libc-unsafe   rand() (unseeded, global-state) and sprintf (unbounded).
                Use util::Random and snprintf.

  bench-include bench/*.cc must not include engine internals (lsm/,
                multilevel/, btree/, engine/ headers) directly; they go
                through bench/harness.h so the engine surface the
                benchmarks exercise stays in one reviewable place.

  read-path-lock  util::MutexLock (or ReaderLock) inside a function named
                Get* / MultiGet in src/lsm/ or src/multilevel/. Point reads
                pin the published ReadView with one atomic load; a mutex on
                that path is the serialization the ReadView design removed.

  write-path-sleep  SleepForMicroseconds / sleep_for in the write-path
                files (src/engine/write_frontend.*, src/lsm/blsm_tree.*,
                src/multilevel/multilevel_tree.*). Stalled writers wait on
                the StallTracker CondVar, signaled on structural change;
                a bare sleep there is the unbounded-latency poll loop this
                repo's backpressure design replaced. The spring's
                proportional one-shot delay is the sanctioned exception
                (annotated with lint:allow at the call site).

  raw-io        pread / pwrite / preadv / pwritev and bare ::read() /
                ::write() anywhere outside src/io/. Every data-path byte
                flows through the Env layer so counters, rate limiting,
                fault injection, and batching all see it; a raw positional
                IO call bypasses all four. Cache-control calls (::open,
                ::fdatasync, ::posix_fadvise) are not data-path and stay
                allowed.

  compaction-pick  Direct version_->levels / version_->LevelBytes access
                inside a Pick* / CompactionPending / RunCompactionPass
                body in src/multilevel/. Compaction decisions are pure
                functions of a CompactionInputs snapshot evaluated by the
                engine::CompactionPolicy layer; the one sanctioned crossing
                is BuildCompactionInputsLocked. Execution (ExecutePick,
                FlushMemtable) may touch the version freely.

A line may opt out with a justification:  // lint:allow(<rule>) <reason>
The reason is mandatory; a bare allow is itself an error.

Exit status 0 when clean; 1 with one "file:line: [rule] message" per
violation otherwise.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SOURCE_DIRS = ["src", "tests", "bench", "examples", "tools"]
SOURCE_SUFFIXES = {".h", ".cc", ".cpp"}

RAW_LOCK = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock|condition_variable)\b"
)
LIBC_UNSAFE = re.compile(r"(?<![\w:.])(rand|sprintf)\s*\(")
RAW_IO = re.compile(
    r"(?<![\w:.>])(pread|pwrite|preadv|pwritev)\s*\(|::(read|write)\s*\("
)
ENGINE_INTERNAL_INCLUDE = re.compile(
    r'#\s*include\s+"(lsm|multilevel|btree|engine)/'
)
# Out-of-line method definitions at column 0 (return type, then
# Class::Method(). The read-path rule keys off which method body the line
# falls in: a Get*/MultiGet definition opens a no-lock region that the next
# method definition closes.
METHOD_DEF = re.compile(r"^[\w:<>,&*~\s]+\b[\w<>]+::(?P<method>~?\w+)\s*\(")
READ_PATH_LOCK = re.compile(r"\butil::(MutexLock|ReaderLock)\b")
COMPACTION_PICK_ACCESS = re.compile(r"version_->(levels|LevelBytes)\b")
WRITE_PATH_SLEEP = re.compile(r"\b(SleepForMicroseconds|sleep_for)\s*\(")
WRITE_PATH_FILES = (
    "src/engine/write_frontend.",
    "src/lsm/blsm_tree.",
    "src/multilevel/multilevel_tree.",
)
ALLOW = re.compile(r"//\s*lint:allow\((?P<rule>[\w-]+)\)\s*(?P<reason>.*)")


def allowed(line: str, rule: str, violations, path, lineno) -> bool:
    m = ALLOW.search(line)
    if not m:
        return False
    if m.group("rule") != rule:
        return False
    if not m.group("reason").strip():
        violations.append(
            (path, lineno, "lint-allow", "lint:allow needs a reason")
        )
    return True


def lint_file(path: Path, violations) -> None:
    rel = path.relative_to(REPO)
    rel_str = str(rel)
    in_util = rel_str.startswith("src/util/")
    in_io = rel_str.startswith("src/io/")
    in_bench_cc = rel_str.startswith("bench/") and path.suffix != ".h"
    in_write_path = rel_str.startswith(WRITE_PATH_FILES)
    in_read_path_dir = rel_str.startswith(("src/lsm/", "src/multilevel/"))
    in_multilevel = rel_str.startswith("src/multilevel/")
    in_get_fn = False
    in_pick_fn = False
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return
    for lineno, line in enumerate(text.splitlines(), start=1):
        code = line.split("//", 1)[0]
        if not in_util and RAW_LOCK.search(code):
            if not allowed(line, "raw-lock", violations, rel_str, lineno):
                violations.append(
                    (rel_str, lineno, "raw-lock",
                     "raw std lock primitive; use the annotated wrappers "
                     "in src/util/mutex.h")
                )
        if LIBC_UNSAFE.search(code):
            if not allowed(line, "libc-unsafe", violations, rel_str, lineno):
                violations.append(
                    (rel_str, lineno, "libc-unsafe",
                     "rand()/sprintf banned; use util::Random / snprintf")
                )
        if not in_io and RAW_IO.search(code):
            if not allowed(line, "raw-io", violations, rel_str, lineno):
                violations.append(
                    (rel_str, lineno, "raw-io",
                     "raw positional IO outside src/io/; bytes go through "
                     "the Env layer (counters, limiter, faults, batching)")
                )
        if in_bench_cc and ENGINE_INTERNAL_INCLUDE.search(code):
            if not allowed(line, "bench-include", violations, rel_str,
                           lineno):
                violations.append(
                    (rel_str, lineno, "bench-include",
                     "bench sources reach engines via bench/harness.h, "
                     "not engine-internal headers")
                )
        if in_write_path and WRITE_PATH_SLEEP.search(code):
            if not allowed(line, "write-path-sleep", violations, rel_str,
                           lineno):
                violations.append(
                    (rel_str, lineno, "write-path-sleep",
                     "bare sleep in a write-path file; stalls wait on the "
                     "StallTracker CondVar (bounded, signaled on change)")
                )
        if in_read_path_dir:
            m = METHOD_DEF.match(code)
            if m:
                name = m.group("method")
                in_get_fn = name.startswith("Get") or name == "MultiGet"
                in_pick_fn = name.startswith("Pick") or name in (
                    "CompactionPending", "RunCompactionPass")
            if in_get_fn and READ_PATH_LOCK.search(code):
                if not allowed(line, "read-path-lock", violations, rel_str,
                               lineno):
                    violations.append(
                        (rel_str, lineno, "read-path-lock",
                         "mutex in a Get*/MultiGet body; point reads pin "
                         "the ReadView lock-free")
                    )
            if in_multilevel and in_pick_fn and \
                    COMPACTION_PICK_ACCESS.search(code):
                if not allowed(line, "compaction-pick", violations, rel_str,
                               lineno):
                    violations.append(
                        (rel_str, lineno, "compaction-pick",
                         "direct version walk in a compaction decision; "
                         "picks go through engine::CompactionPolicy over "
                         "BuildCompactionInputsLocked")
                    )


def main() -> int:
    violations = []
    for d in SOURCE_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                lint_file(path, violations)
    for path, lineno, rule, msg in violations:
        print(f"{path}:{lineno}: [{rule}] {msg}")
    if violations:
        print(f"lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
