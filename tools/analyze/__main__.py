"""CLI for the invariant analyzer.

    python3 tools/analyze [--root DIR] [--frontend auto|clang|textual]
                          [--check-artifacts | --update-artifacts]
                          [--passes p1,p2] [files...]

Exit codes: 0 clean, 1 violations (or stale artifacts under
--check-artifacts), 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import artifacts  # noqa: E402
import clang_frontend  # noqa: E402
import passes  # noqa: E402
import textual_frontend  # noqa: E402

ANALYZED_DIRS = ("src",)
CONSUMER_DIRS = ("tests", "bench", "tools/ycsb")
SKIP_SUFFIXES = (".gen.h",)
# Analyzer test fixtures are inputs for the ctest driver, not repo code:
# the bad ones contain deliberate violations.
SKIP_DIRS = ("tests/analyze_fixtures",)

RCU_DIRS = ("src/lsm/", "src/multilevel/", "src/engine/")


def discover(root: str) -> tuple[list[str], list[str]]:
    analyzed, consumers = [], []
    for base, buckets in ((ANALYZED_DIRS, analyzed),
                          (CONSUMER_DIRS, consumers)):
        for d in base:
            top = os.path.join(root, d)
            for dirpath, _, names in os.walk(top):
                for n in sorted(names):
                    if not n.endswith((".h", ".cc")):
                        continue
                    if n.endswith(SKIP_SUFFIXES):
                        continue
                    rel = os.path.relpath(os.path.join(dirpath, n), root)
                    if rel.startswith(SKIP_DIRS):
                        continue
                    buckets.append(rel)
    return sorted(analyzed), sorted(consumers)


def main(argv: list[str]) -> int:
    p = argparse.ArgumentParser(prog="tools/analyze")
    p.add_argument("--root", default=".")
    p.add_argument("--frontend", choices=["auto", "clang", "textual"],
                   default="auto")
    p.add_argument("--check-artifacts", action="store_true",
                   help="fail if generated artifacts are stale")
    p.add_argument("--update-artifacts", action="store_true",
                   help="rewrite docs/lock_order.md and the generated headers")
    p.add_argument("--passes", default="all",
                   help="comma-separated subset: blocking-under-lock,"
                        "rcu-publish-order,lock-order,stats-keys")
    p.add_argument("files", nargs="*",
                   help="restrict analysis to these files (fixture mode); "
                        "they are parsed standalone")
    args = p.parse_args(argv)
    root = os.path.abspath(args.root)

    if args.files:
        analyzed = [os.path.relpath(os.path.abspath(f), root)
                    for f in args.files]
        consumers: list[str] = []
    else:
        analyzed, consumers = discover(root)

    texts = {}
    for rel in analyzed + consumers:
        try:
            with open(os.path.join(root, rel)) as f:
                texts[rel] = f.read()
        except OSError as e:
            print(f"error: {rel}: {e}", file=sys.stderr)
            return 2

    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if clang_frontend.available() else "textual"
    elif frontend == "clang" and not clang_frontend.available():
        print("error: --frontend=clang but clang.cindex is unavailable",
              file=sys.stderr)
        return 2
    builder = (clang_frontend.build_model if frontend == "clang"
               else textual_frontend.build_model)
    model = builder(root, analyzed + consumers, texts)

    if args.update_artifacts:
        for rel, render in artifacts.ARTIFACTS.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as f:
                f.write(render(model))
            print(f"wrote {rel}")
        return 0

    selected = (set(passes.KNOWN_PASSES) if args.passes == "all"
                else set(args.passes.split(",")))
    unknown = selected - passes.KNOWN_PASSES
    if unknown:
        print(f"error: unknown pass(es): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    analyzed_set = set(analyzed)
    rcu_set = (analyzed_set if args.files else
               {f for f in analyzed_set
                if any(f.startswith(d) for d in RCU_DIRS)})

    violations = []
    if passes.PASS_BLOCKING in selected:
        violations += passes.run_blocking_under_lock(model, analyzed_set)
    if passes.PASS_RCU in selected:
        violations += passes.run_rcu_publish_order(model, rcu_set)
    if passes.PASS_LOCK_ORDER in selected:
        violations += passes.run_lock_order(model)
    if passes.PASS_STATS in selected:
        registry = None
        reg_path = os.path.join(root, "src/engine/stats_keys.gen.h")
        if os.path.exists(reg_path) and not args.files:
            with open(reg_path) as f:
                registry = artifacts.parse_stats_registry(f.read())
        violations += passes.run_stats_keys(model, registry,
                                            set(consumers))
    if not args.files:
        violations += passes.run_allow_hygiene(
            model, lint_rules={"raw-lock", "libc-unsafe", "bench-include",
                               "read-path-lock", "write-path-sleep",
                               "raw-io", "compaction-pick"})

    stale = []
    if args.check_artifacts and not args.files:
        for rel, render in artifacts.ARTIFACTS.items():
            path = os.path.join(root, rel)
            want = render(model)
            have = ""
            if os.path.exists(path):
                with open(path) as f:
                    have = f.read()
            if have != want:
                stale.append(rel)

    for v in sorted(violations, key=lambda v: (v.file, v.line)):
        print(v.format())
    for rel in stale:
        print(f"{rel}: stale — regenerate with tools/analyze "
              f"--update-artifacts")
    for w in model.warnings:
        print(f"warning: {w}", file=sys.stderr)

    n = len(violations)
    print(f"analyze[{frontend}]: {len(analyzed)} files, "
          f"{len(model.functions)} functions, {n} violation(s)"
          + (f", {len(stale)} stale artifact(s)" if args.check_artifacts
             else ""),
          file=sys.stderr)
    return 1 if (violations or stale) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
