"""libclang (clang.cindex) frontend.

Preferred when python3-clang + libclang are installed (the CI analyze
lane installs them); `available()` gates it so environments without
libclang fall back to the textual frontend transparently. The cursor
walk supplies what textual scanning can only approximate — canonical
field/local types resolved through typedefs and the exact extents of
function definitions — while body events (lock scopes, calls, slot
stores) reuse the shared extraction in textual_frontend so both
frontends stay behaviorally interchangeable (tests/analyze_fixtures
pins that contract for whichever frontend is active).
"""

from __future__ import annotations

import json
import os

from cpp_model import ClassInfo, Model, MutexMember, SlotMember
from cpp_source import clean_source, strip_template_args
import textual_frontend

_index = None


def available() -> bool:
    global _index
    if _index is not None:
        return True
    try:
        from clang import cindex  # noqa: F401
    except ImportError:
        return False
    try:
        _index = cindex.Index.create()
    except Exception:
        return False
    return True


def _compile_args(repo_root: str) -> list[str]:
    """Best-effort flags from build/compile_commands.json, falling back to
    the project's defaults."""
    path = os.path.join(repo_root, "build", "compile_commands.json")
    if os.path.exists(path):
        try:
            with open(path) as f:
                db = json.load(f)
            for entry in db:
                cmd = entry.get("command", "")
                args = [a for a in cmd.split() if a.startswith(("-I", "-D",
                                                                "-std="))]
                if args:
                    return args
        except (OSError, json.JSONDecodeError):
            pass
    return ["-std=c++20", f"-I{os.path.join(repo_root, 'src')}",
            f"-I{repo_root}"]


def build_model(repo_root: str, rel_paths: list[str],
                file_texts: dict[str, str]) -> Model:
    from clang import cindex

    model = Model()
    for rel in rel_paths:
        model.sources[rel] = clean_source(rel, file_texts[rel])

    args = _compile_args(repo_root)
    opts = (cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0
            | cindex.TranslationUnit.PARSE_INCOMPLETE)

    parsed_classes: set[str] = set()
    for rel in sorted(rel_paths, key=lambda p: (not p.endswith(".h"), p)):
        full = os.path.join(repo_root, rel)
        try:
            tu = _index.parse(full, args=args, options=opts)
        except cindex.TranslationUnitLoadError as e:
            model.warnings.append(f"{rel}: clang parse failed: {e}")
            continue
        _walk(model, tu.cursor, rel, full, parsed_classes)

    # Body events + annotations come from the shared structural layer so
    # both frontends agree on pass inputs; clang contributed the class
    # shape and canonical member types above (setdefault in _walk keeps
    # the richer clang-resolved entries when both saw a class).
    textual = textual_frontend.build_model(repo_root, rel_paths, file_texts)
    for q, info in textual.classes.items():
        if q in model.classes:
            merged = model.classes[q]
            for name, t in info.member_types.items():
                merged.member_types.setdefault(name, t)
            merged.methods.update(info.methods)
            for name, m in info.mutexes.items():
                if name in merged.mutexes:
                    m.rank_expr = m.rank_expr or merged.mutexes[name].rank_expr
                merged.mutexes[name] = m
            merged.slots.update(info.slots)
        else:
            model.classes[q] = info
    model.functions = textual.functions
    model.warnings += textual.warnings
    return model


def _qualified_name(cursor) -> str:
    parts = []
    c = cursor
    while c is not None and c.kind.name != "TRANSLATION_UNIT":
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def _walk(model: Model, cursor, rel: str, full: str,
          parsed_classes: set[str]) -> None:
    from clang import cindex

    for child in cursor.get_children():
        loc = child.location
        if loc.file is None or os.path.abspath(loc.file.name) != \
                os.path.abspath(full):
            continue
        kind = child.kind
        if kind in (cindex.CursorKind.NAMESPACE,
                    cindex.CursorKind.LINKAGE_SPEC):
            _walk(model, child, rel, full, parsed_classes)
        elif kind in (cindex.CursorKind.CLASS_DECL,
                      cindex.CursorKind.STRUCT_DECL) and \
                child.is_definition():
            q = _qualified_name(child)
            if not q or q in parsed_classes:
                continue
            parsed_classes.add(q)
            info = model.classes.setdefault(
                q, ClassInfo(name=q, file=rel, line=loc.line))
            for f in child.get_children():
                if f.kind == cindex.CursorKind.FIELD_DECL:
                    t = f.type.spelling
                    base = strip_template_args(t)
                    info.member_types[f.spelling] = base
                    if "util::Mutex" in t or t.endswith("Mutex"):
                        info.mutexes.setdefault(f.spelling, MutexMember(
                            cls=q, name=f.spelling,
                            kind="SharedMutex" if "SharedMutex" in t
                            else "Mutex",
                            file=rel, line=f.location.line))
                    elif "AtomicSharedPtr" in t:
                        info.slots.setdefault(f.spelling, SlotMember(
                            cls=q, name=f.spelling, file=rel,
                            line=f.location.line))
                elif f.kind in (cindex.CursorKind.CLASS_DECL,
                                cindex.CursorKind.STRUCT_DECL):
                    _walk(model, child, rel, full, parsed_classes)
