"""Structural (non-libclang) frontend.

Builds the same `cpp_model.Model` the clang.cindex frontend produces, from
a recursive scan of comment/string-stripped source: namespace and class
nesting via balanced braces, member and method declarations at class
level, and function bodies reduced to the events the passes consume
(lock scopes, call expressions with receivers, RCU slot stores, release
operations). It understands this repository's constrained style — the
annotated wrappers in src/util/mutex.h, the TSA macros, Google-ish
formatting — which is what makes a textual pass AST-grade *for this
tree*: scopes come from real brace structure, calls may span any number
of lines, and receivers resolve through declared member types.

It exists because libclang is not installed everywhere this runs (the
clang frontend is preferred when `clang.cindex` can load); both must stay
behaviorally interchangeable — tests/analyze_fixtures pins that.
"""

from __future__ import annotations

import re

from cpp_model import (
    Call,
    ClassInfo,
    Function,
    LockScope,
    MethodDecl,
    Model,
    MutexMember,
    ReleaseOp,
    SlotMember,
    SlotStore,
)
from cpp_source import CleanSource, clean_source, match_forward, strip_template_args

KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "else", "do",
    "sizeof", "alignof", "decltype", "static_assert", "new", "delete",
    "throw", "case", "default", "goto", "co_return", "co_await", "co_yield",
    "alignas", "noexcept", "typedef", "using", "template", "typename",
    "public", "private", "protected", "operator", "const_cast",
    "static_cast", "dynamic_cast", "reinterpret_cast", "assert",
}

ANNOTATION_NAMES = (
    "REQUIRES_SHARED", "REQUIRES", "EXCLUDES",
    "ACQUIRED_BEFORE", "ACQUIRED_AFTER",
    "ACQUIRE_SHARED", "ACQUIRE", "RELEASE_SHARED", "RELEASE_GENERIC",
    "RELEASE", "TRY_ACQUIRE_SHARED", "TRY_ACQUIRE",
    "GUARDED_BY", "PT_GUARDED_BY", "ASSERT_CAPABILITY",
    "ASSERT_SHARED_CAPABILITY", "RETURN_CAPABILITY", "CAPABILITY",
    "SCOPED_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
)

ANNOT_RE = re.compile(
    r"\b(" + "|".join(ANNOTATION_NAMES) + r")\b\s*(\(([^()]*)\))?"
)

CLASS_HEAD_RE = re.compile(
    r"^\s*(?:template\s*<[^{}]*>\s*)?(class|struct)\b"
)
GUARD_RE = re.compile(
    r"util::(MutexLock|ReaderLock|WriterLock)\s+\w+\s*[({]\s*&\s*([^;(){}]+?)\s*[)}]\s*;"
)
MEMBER_CALL_RE = re.compile(
    r"(?P<chain>(?:\bthis\b|[A-Za-z_]\w*(?:\[[^\[\]]*\])?)"
    r"(?:(?:\.|->)[A-Za-z_]\w*(?:\[[^\[\]]*\])?)*?)"
    r"(?:\.|->)(?P<name>[A-Za-z_]\w*)\s*\("
)
FREE_CALL_RE = re.compile(
    r"(?<![\w.>:])(?P<name>[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\("
)
NULL_ASSIGN_RE = re.compile(
    r"(?P<target>[A-Za-z_][\w.\->\[\]]*?)\s*=\s*(?:nullptr|\{\s*\})\s*;"
)
LOCAL_DECL_RE = re.compile(
    r"(?:^|[;{}])\s*(?P<type>(?:const\s+)?[A-Za-z_][\w:]*"
    r"(?:<[^<>;=]*(?:<[^<>;=]*>)?[^<>;=]*>)?(?:\s*[*&])?)"
    r"\s+(?P<name>[A-Za-z_]\w*)\s*[=({;]"
)
MUTEX_DECL_RE = re.compile(
    r"(?:mutable\s+)?util::(Mutex|SharedMutex)\s+(\w+)\b"
)
SLOT_DECL_RE = re.compile(r"util::AtomicSharedPtr\s*<(.+)>\s+(\w+)\b")
LOCK_RANK_INIT_RE = re.compile(r"\{\s*([^{}]*?)\s*\}\s*$")


def _parse_annotations(text: str) -> dict[str, list[str]]:
    out: dict[str, list[str]] = {}
    for m in ANNOT_RE.finditer(text):
        args = m.group(3) or ""
        names = [a.strip() for a in args.split(",") if a.strip()
                 and not a.strip() in ("true", "false")]
        out.setdefault(m.group(1), []).extend(names)
    return out


def _strip_annotations(text: str) -> str:
    return ANNOT_RE.sub(" ", text)


class FileParser:
    def __init__(self, src: CleanSource, model: Model):
        self.src = src
        self.clean = _blank_preprocessor(src.clean)
        self.model = model
        self.rel = src.path

    # ---- region scanning ----

    def parse(self) -> None:
        self.scan_region(0, len(self.clean), ns=[], cls=None)

    def scan_region(self, start: int, end: int, ns: list[str],
                    cls: ClassInfo | None) -> None:
        clean = self.clean
        i = start
        seg_start = start
        while i < end:
            ch = clean[i]
            if ch == ";":
                if cls is not None:
                    self.handle_class_segment(clean[seg_start:i], seg_start, cls)
                seg_start = i + 1
                i += 1
            elif ch == "{":
                head = clean[seg_start:i]
                close = match_forward(clean, i)
                if close < 0 or close > end:
                    return  # unbalanced; bail out of this region
                self.classify_block(head, seg_start, i, close, ns, cls)
                i = close + 1
                seg_start = i
            elif ch == "}":
                i += 1
                seg_start = i
            else:
                i += 1
        if cls is not None and clean[seg_start:end].strip():
            self.handle_class_segment(clean[seg_start:end], seg_start, cls)

    def classify_block(self, head: str, head_start: int, open_pos: int,
                       close_pos: int, ns: list[str],
                       cls: ClassInfo | None) -> None:
        stripped = head.strip()
        # Access specifiers leave "public:" prefixes glued to heads inside
        # classes; drop them.
        stripped = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "",
                          stripped)
        if stripped.startswith("namespace"):
            name = stripped[len("namespace"):].strip()
            sub = ns + ([p for p in name.split("::") if p] if name else [])
            self.scan_region(open_pos + 1, close_pos, sub, cls)
            return
        if re.match(r"^\s*(?:enum|union)\b", stripped):
            return
        if stripped.startswith('extern'):
            self.scan_region(open_pos + 1, close_pos, ns, cls)
            return
        m = CLASS_HEAD_RE.match(stripped)
        if m:
            # `class CAPABILITY("mutex") Mutex : public X` -> "Mutex";
            # the base clause starts at a single colon (never the "::" of
            # a qualified name like `struct MemEnv::FileState`).
            body = _strip_annotations(stripped[m.end():])
            body = re.split(r"(?<!:):(?!:)", body, 1)[0]
            words = re.findall(r"[A-Za-z_]\w*", body)
            words = [w for w in words if w not in ("final", "alignas")]
            if not words:
                return  # anonymous
            name = words[-1]
            qual_prefix = "::".join(ns)
            if cls is not None:
                qualified = f"{cls.name}::{name}"
            else:
                qualified = f"{qual_prefix}::{name}" if qual_prefix else name
            info = self.model.classes.setdefault(
                qualified,
                ClassInfo(name=qualified, file=self.rel,
                          line=self.src.line_of(open_pos)),
            )
            self.scan_region(open_pos + 1, close_pos, ns, info)
            return
        # Function definition: the head must contain a balanced parameter
        # list and end (after annotations/qualifiers) in a way a function
        # head can.
        paren = stripped.find("(")
        if paren > 0:
            fn = self.try_function(stripped, head_start, open_pos, close_pos,
                                   ns, cls)
            if fn is not None:
                return
        if cls is not None:
            # Member declaration with a brace initializer:
            # `util::Mutex mu_{lock_rank::kFoo};`
            init = self.clean[open_pos + 1 : close_pos]
            self.handle_class_segment(head, head_start, cls,
                                      brace_init=init)

    def try_function(self, head: str, head_start: int, open_pos: int,
                     close_pos: int, ns: list[str],
                     cls: ClassInfo | None) -> Function | None:
        paren = head.find("(")
        before = head[:paren].rstrip()
        m = re.search(r"((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)$", before)
        if not m:
            return None
        name = m.group(1)
        base = name.split("::")[-1]
        if base in KEYWORDS or base in ("REQUIRES", "EXCLUDES"):
            return None
        # Reject constructor-init-list brace confusion: the function head
        # must close its parameter list, and whatever trails the last ')'
        # must be qualifiers/trailing-return only (a `: member_{...}` brace
        # initializer leaves a dangling identifier).
        if head.count("(") != head.count(")"):
            return None
        tail = _strip_annotations(head).rsplit(")", 1)[-1]
        if "->" not in tail and not re.fullmatch(
                r"(?:\s*(?:const|noexcept|override|final|mutable|try|&&?))*\s*",
                tail):
            return None
        fn_cls: str | None = None
        fn_name = name
        if "::" in name:
            parts = name.split("::")
            fn_name = parts[-1]
            owner_short = parts[-2] if parts[-2] else None
            owner = "::".join(parts[:-1])
            prefix = "::".join(ns)
            candidates = [owner]
            if prefix:
                candidates.insert(0, f"{prefix}::{owner}")
            fn_cls = None
            for c in candidates:
                if c in self.model.classes:
                    fn_cls = c
                    break
            if fn_cls is None:
                info = self.model.find_class(owner)
                fn_cls = info.name if info is not None else candidates[0]
            del owner_short
        elif cls is not None:
            fn_cls = cls.name

        fn = Function(
            cls=fn_cls,
            name=fn_name,
            file=self.rel,
            line=self.src.line_of(open_pos),
            body_start=open_pos,
            body_end=close_pos,
        )
        # Parameters join local_types so calls through parameters
        # (`manifest.Save(env_, ...)`) resolve like calls through locals.
        open_p = head.find("(")
        depth = 0
        close_p = -1
        for k in range(open_p, len(head)):
            if head[k] == "(":
                depth += 1
            elif head[k] == ")":
                depth -= 1
                if depth == 0:
                    close_p = k
                    break
        if close_p > open_p:
            for param in _split_top_level(head[open_p + 1 : close_p]):
                param = re.sub(r"=.*$", "", param).strip()
                pm = re.match(r"^(?P<type>.+?)[\s*&]+(?P<name>\w+)$", param,
                              re.S)
                if pm and pm.group("type").split()[-1] not in KEYWORDS:
                    fn.local_types[pm.group("name")] = strip_template_args(
                        pm.group("type"))
                    fn.local_decl_types[pm.group("name")] = pm.group(
                        "type").strip()
        annots = _parse_annotations(head)
        fn.requires += annots.get("REQUIRES", []) + annots.get(
            "REQUIRES_SHARED", [])
        fn.excludes += annots.get("EXCLUDES", [])
        fn.acquires += annots.get("ACQUIRE", []) + annots.get(
            "ACQUIRE_SHARED", [])
        self.parse_body(fn)
        self.model.functions.append(fn)
        return fn

    # ---- class-level declarations ----

    def handle_class_segment(self, seg: str, seg_start: int, cls: ClassInfo,
                             brace_init: str | None = None) -> None:
        text = seg.strip()
        text = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "", text)
        if not text or text.startswith(("friend", "using", "typedef",
                                        "static_assert", "#")):
            return
        line = self.src.line_of(seg_start + len(seg) - len(seg.lstrip()))
        annots = _parse_annotations(text)
        mutex = MUTEX_DECL_RE.search(text)
        slot = SLOT_DECL_RE.search(text)
        # Annotation macros put parens on data-member declarations
        # (`util::Mutex io_mu_ ACQUIRED_BEFORE(mu_);`), so strip them
        # before deciding declaration vs. method.
        if mutex is None and slot is None and "(" in _strip_annotations(text):
            # Method declaration (or a member with a paren initializer —
            # treat anything whose name precedes a '(' as a method; member
            # initializers don't carry TSA annotations so nothing is lost).
            plain = _strip_annotations(text)
            paren = plain.find("(")
            m = re.search(r"((?:operator\s*..?.?|~?[A-Za-z_]\w*))\s*$",
                          plain[:paren].rstrip())
            if not m:
                return
            name = m.group(1)
            if name in KEYWORDS:
                return
            decl = cls.methods.setdefault(name, MethodDecl(cls=cls.name,
                                                           name=name))
            decl.requires += annots.get("REQUIRES", []) + annots.get(
                "REQUIRES_SHARED", [])
            decl.excludes += annots.get("EXCLUDES", [])
            decl.acquires += annots.get("ACQUIRE", []) + annots.get(
                "ACQUIRE_SHARED", [])
            decl.releases += annots.get("RELEASE", []) + annots.get(
                "RELEASE_SHARED", [])
            return
        if mutex:
            kind, name = mutex.group(1), mutex.group(2)
            member = MutexMember(cls=cls.name, name=name, kind=kind,
                                 file=self.rel, line=line)
            member.acquired_before = annots.get("ACQUIRED_BEFORE", [])
            allow = self.src.allowed_decl("blocking-under-lock", line)
            if allow is not None:
                member.io_allowed_reason = allow.reason or None
            if brace_init is not None:
                member.rank_expr = brace_init.strip() or None
            else:
                init = LOCK_RANK_INIT_RE.search(text)
                if init:
                    member.rank_expr = init.group(1).strip() or None
            cls.mutexes[name] = member
            cls.member_types[name] = f"util::{kind}"
            return
        if slot:
            name = slot.group(2)
            cls.slots[name] = SlotMember(cls=cls.name, name=name,
                                         file=self.rel, line=line)
            cls.member_types[name] = "util::AtomicSharedPtr"
            return
        # Plain data member: last identifier is the name, the rest the type.
        clean = _strip_annotations(text)
        clean = re.sub(r"=\s*[^;]*$", "", clean).strip()
        clean = re.sub(r"\[[^\]]*\]\s*$", "", clean).strip()
        m = re.match(r"^(?P<type>.+?)\s+(?P<name>[A-Za-z_]\w*)$", clean,
                     re.S)
        if m and m.group("type").split()[-1] not in KEYWORDS:
            cls.member_types[m.group("name")] = strip_template_args(
                m.group("type"))

    # ---- function bodies ----

    def parse_body(self, fn: Function) -> None:
        clean = self.clean
        bs, be = fn.body_start + 1, fn.body_end
        body = clean[bs:be]

        # Innermost-enclosing-block index for scope ends.
        pairs: list[tuple[int, int]] = []
        stack: list[int] = []
        for off in range(bs, be):
            if clean[off] == "{":
                stack.append(off)
            elif clean[off] == "}" and stack:
                pairs.append((stack.pop(), off))

        def innermost_end(pos: int) -> int:
            best = be
            best_span = be - bs + 1
            for o, c in pairs:
                if o < pos <= c and (c - o) < best_span:
                    best, best_span = c, c - o
            return best

        # Local declarations (receiver/type resolution).
        for m in LOCAL_DECL_RE.finditer(body):
            t = m.group("type").strip()
            if t.split("<")[0].split()[-1].rstrip("*&") in KEYWORDS:
                continue
            fn.local_types.setdefault(m.group("name"),
                                      strip_template_args(t))
            fn.local_decl_types.setdefault(m.group("name"), t)

        # Scoped lock guards.
        for m in GUARD_RE.finditer(body):
            pos = bs + m.start()
            end = innermost_end(bs + m.end())
            expr = m.group(2).strip()
            fn.lock_scopes.append(LockScope(
                mutex=expr, kind=m.group(1), start=bs + m.end(), end=end,
                line=self.src.line_of(pos)))

        # Call expressions.
        member_spans: list[tuple[int, int]] = []
        for m in MEMBER_CALL_RE.finditer(body):
            chain = m.group("chain")
            if chain.split("[")[0].split("->")[0].split(".")[0] in KEYWORDS:
                continue
            pos = bs + m.start()
            open_paren = bs + m.end() - 1
            close = match_forward(clean, open_paren)
            arg_text = clean[open_paren + 1 : close] if close > 0 else ""
            fn.calls.append(Call(receiver=chain, name=m.group("name"),
                                 offset=pos, line=self.src.line_of(pos),
                                 arg_text=arg_text.strip()))
            member_spans.append((m.start(), m.end()))
        for m in FREE_CALL_RE.finditer(body):
            if any(s <= m.start() < e for s, e in member_spans):
                continue
            name = m.group("name")
            base = name.split("::")[-1]
            if base in KEYWORDS or name.split("::")[0] in KEYWORDS:
                continue
            # Distinguish a call from a declaration: the token before a
            # call is an operator/punctuation or a keyword like `return`;
            # before a declaration it is a type name.
            j = m.start() - 1
            while j >= 0 and body[j] in " \t\n":
                j -= 1
            if j >= 0 and (body[j].isalnum() or body[j] in "_>*&"):
                wm = re.search(r"([A-Za-z_]\w*)$", body[: j + 1])
                prev_word = wm.group(1) if wm else ""
                if prev_word not in ("return", "co_return", "throw", "case",
                                     "new", "delete"):
                    continue  # declaration like `util::MutexLock l(...)`
            pos = bs + m.start()
            open_paren = bs + m.end() - 1
            close = match_forward(clean, open_paren)
            arg_text = clean[open_paren + 1 : close] if close > 0 else ""
            fn.calls.append(Call(receiver="", name=name, offset=pos,
                                 line=self.src.line_of(pos),
                                 arg_text=arg_text.strip()))

        self.derive_manual_scopes(fn)
        # Slot stores / release ops are derived in build_model after every
        # file is parsed: an inline method body can reference members the
        # class declares further down (private section last), so the class
        # must be complete before events are classified.

        # Null assignments (release ops). is_member is finalized post-parse.
        for m in NULL_ASSIGN_RE.finditer(body):
            target = m.group("target").strip()
            if "=" in target or target.split("->")[0].split(".")[0] in KEYWORDS:
                continue
            pos = bs + m.start()
            fn.release_ops.append(ReleaseOp(
                target=target, op="null-assign",
                is_member=False,
                offset=pos, line=self.src.line_of(pos)))

    def derive_manual_scopes(self, fn: Function) -> None:
        opens: list[tuple[str, str, Call]] = []
        for c in fn.calls:
            if c.name in ("Lock", "LockShared") and c.receiver:
                opens.append((c.receiver, c.name, c))
            elif c.name in ("Unlock", "UnlockShared") and c.receiver:
                for k in range(len(opens) - 1, -1, -1):
                    recv, kind, oc = opens[k]
                    if recv == c.receiver and oc.offset < c.offset:
                        fn.lock_scopes.append(LockScope(
                            mutex=recv, kind="manual", start=oc.offset,
                            end=c.offset, line=oc.line))
                        opens.pop(k)
                        break
        for recv, kind, oc in opens:
            # Lock without a (seen) unlock on any path: the scope runs to
            # the end of the function; the TSA lane checks balance.
            fn.lock_scopes.append(LockScope(
                mutex=recv, kind="manual", start=oc.offset,
                end=fn.body_end, line=oc.line))

    # (slot-event derivation lives at module level: see derive_slot_events)


def short(qualified: str) -> str:
    return qualified.rsplit("::", 1)[-1]


def _split_top_level(text: str) -> list[str]:
    """Split on commas not nested in <>, (), {} or []."""
    out = []
    depth = 0
    cur = []
    for ch in text:
        if ch in "<({[":
            depth += 1
        elif ch in ">)}]":
            depth -= 1
        elif ch == "," and depth == 0:
            out.append("".join(cur))
            cur = []
            continue
        cur.append(ch)
    if cur:
        out.append("".join(cur))
    return [p.strip() for p in out if p.strip()]


def _blank_preprocessor(clean: str) -> str:
    """Blank preprocessor directives (incl. backslash continuations) so
    `#if defined(...)` parens never confuse structural scanning."""
    lines = clean.split("\n")
    out = []
    cont = False
    for ln in lines:
        is_pp = cont or ln.lstrip().startswith("#")
        cont = is_pp and ln.rstrip().endswith("\\")
        out.append(" " * len(ln) if is_pp else ln)
    return "\n".join(out)


def is_member_target(model: Model, fn: Function, target: str) -> bool:
    head = re.split(r"\.|->|\[", target)[0]
    if head in fn.local_types:
        return False
    info = model.classes.get(fn.cls) if fn.cls else None
    if info is not None and head in info.member_types:
        return True
    # The repo convention: trailing underscore = member.
    return head.endswith("_")


def derive_slot_events(model: Model, fn: Function) -> None:
    """Classifies parsed calls into slot stores and release ops. Runs after
    every file is parsed: an inline method body may reference members the
    class declares below it, so the class must be complete first."""
    cls_info = model.classes.get(fn.cls) if fn.cls else None
    for c in fn.calls:
        if c.name == "store" and c.receiver:
            recv = c.receiver.removeprefix("this->").removeprefix("this.")
            if cls_info is not None and recv in cls_info.slots:
                arg = c.arg_text.strip()
                mv = re.match(r"^std::move\(\s*(\w+)\s*\)$", arg)
                var = mv.group(1) if mv else (
                    arg if re.match(r"^\w+$", arg) else None)
                fn.slot_stores.append(SlotStore(
                    slot=f"{short(cls_info.name)}::{recv}",
                    arg_var=var, offset=c.offset, line=c.line))
            elif recv.endswith(("->obsolete", ".obsolete")):
                target = recv[: -len("->obsolete")] if recv.endswith(
                    "->obsolete") else recv[: -len(".obsolete")]
                fn.release_ops.append(ReleaseOp(
                    target=target, op="obsolete",
                    is_member=is_member_target(model, fn, target),
                    offset=c.offset, line=c.line))
        elif c.name == "reset" and c.receiver:
            target = c.receiver.removeprefix("this->")
            fn.release_ops.append(ReleaseOp(
                target=target, op="reset",
                is_member=is_member_target(model, fn, target),
                offset=c.offset, line=c.line))


def build_model(repo_root: str, rel_paths: list[str],
                file_texts: dict[str, str]) -> Model:
    model = Model()
    sources = {}
    for rel in rel_paths:
        src = clean_source(rel, file_texts[rel])
        sources[rel] = src
    model.sources = sources
    # Two passes: headers first so out-of-line definitions in .cc files
    # resolve against fully-declared classes.
    ordered = sorted(rel_paths, key=lambda p: (not p.endswith(".h"), p))
    for rel in ordered:
        FileParser(sources[rel], model).parse()
    # Merge in-class declaration annotations into definitions.
    for fn in model.functions:
        if fn.cls is None:
            continue
        decl = model.method_decl(fn.cls, fn.name)
        if decl is None:
            continue
        for src_list, dst_list in ((decl.requires, fn.requires),
                                   (decl.excludes, fn.excludes),
                                   (decl.acquires, fn.acquires)):
            for item in src_list:
                if item not in dst_list:
                    dst_list.append(item)
    # Event derivation needs complete classes (see derive_slot_events).
    for fn in model.functions:
        derive_slot_events(model, fn)
        for r in fn.release_ops:
            if r.op == "null-assign":
                r.is_member = is_member_target(model, fn, r.target)
    return model
