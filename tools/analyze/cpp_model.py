"""The frontend-independent IR the analysis passes consume.

Both frontends (textual and clang.cindex) lower the tree to this model:
classes with typed members and annotated method declarations, plus
function bodies reduced to the events the passes care about — lock
scopes, call sites, RCU slot stores, release operations. Passes never
look at source text except to format diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MutexMember:
    """A util::Mutex / util::SharedMutex data member."""

    cls: str  # qualified class name, e.g. "blsm::wal::LogicalLog"
    name: str  # member name, e.g. "io_mu_"
    kind: str  # "Mutex" | "SharedMutex"
    file: str
    line: int
    acquired_before: list[str] = field(default_factory=list)  # member names
    # A decl-site analyze:allow(blocking-under-lock) marks a mutex whose
    # purpose is serializing IO; blocking calls under it are sanctioned.
    io_allowed_reason: str | None = None
    rank_expr: str | None = None  # initializer text, e.g. "lock_rank::kFoo"

    @property
    def qualified(self) -> str:
        return f"{short_class(self.cls)}::{self.name}"


@dataclass
class SlotMember:
    """A util::AtomicSharedPtr member — an RCU publication point."""

    cls: str
    name: str
    file: str
    line: int


@dataclass
class MethodDecl:
    """An in-class method declaration's thread-safety annotations."""

    cls: str
    name: str
    requires: list[str] = field(default_factory=list)
    excludes: list[str] = field(default_factory=list)
    acquires: list[str] = field(default_factory=list)
    releases: list[str] = field(default_factory=list)


@dataclass
class ClassInfo:
    name: str  # qualified, e.g. "blsm::engine::WriteFrontend"
    file: str
    line: int
    # member name -> pointee/value type text (template args stripped), used
    # to resolve `frontend_->Freeze()` to WriteFrontend::Freeze.
    member_types: dict[str, str] = field(default_factory=dict)
    mutexes: dict[str, MutexMember] = field(default_factory=dict)
    slots: dict[str, SlotMember] = field(default_factory=dict)
    methods: dict[str, MethodDecl] = field(default_factory=dict)


@dataclass
class Call:
    """One call expression inside a function body."""

    receiver: str  # "env_", "file_->tracker_", "" for free/this calls
    name: str  # last path component actually called
    offset: int  # into the file's clean text
    line: int
    arg_text: str  # raw text between the call's parentheses


@dataclass
class LockScope:
    """A region of a function body executed with a mutex held."""

    mutex: str  # canonical "Class::member" or "<local>name" or "<unresolved>expr"
    kind: str  # "MutexLock" | "ReaderLock" | "WriterLock" | "manual"
    start: int  # clean-text offsets delimiting the region
    end: int
    line: int


@dataclass
class SlotStore:
    """`slot_.store(arg)` on an AtomicSharedPtr member."""

    slot: str  # canonical "Class::member"
    arg_var: str | None  # local var published, if the arg is (std::move of) one
    offset: int
    line: int


@dataclass
class ReleaseOp:
    """An operation that drops or retires a pinned input: `x.reset()`,
    `x = nullptr`, `x->obsolete.store(true)`."""

    target: str  # the variable/member text operated on
    op: str  # "reset" | "null-assign" | "obsolete"
    is_member: bool  # True when target is a class member (ends with _ or
    # declared in the class) — member restructuring pre-publish is protocol
    offset: int
    line: int


@dataclass
class VarUse:
    name: str
    offset: int
    line: int


@dataclass
class Function:
    cls: str | None  # qualified class for methods, None for free functions
    name: str
    file: str
    line: int
    body_start: int  # clean-text offsets of the body braces
    body_end: int
    calls: list[Call] = field(default_factory=list)
    lock_scopes: list[LockScope] = field(default_factory=list)
    slot_stores: list[SlotStore] = field(default_factory=list)
    release_ops: list[ReleaseOp] = field(default_factory=list)
    # annotations merged from the in-class declaration and the definition
    requires: list[str] = field(default_factory=list)
    excludes: list[str] = field(default_factory=list)
    acquires: list[str] = field(default_factory=list)
    # local variable name -> type text (best effort, for receiver resolution)
    local_types: dict[str, str] = field(default_factory=dict)
    # local variable name -> declared type as written (templates intact);
    # the RCU pass keys pin detection off shared_ptr/Ptr wrappers here.
    local_decl_types: dict[str, str] = field(default_factory=dict)

    @property
    def qualified(self) -> str:
        if self.cls:
            return f"{short_class(self.cls)}::{self.name}"
        return self.name


@dataclass
class Model:
    classes: dict[str, ClassInfo] = field(default_factory=dict)  # by qualified name
    functions: list[Function] = field(default_factory=list)
    sources: dict[str, object] = field(default_factory=dict)  # path -> CleanSource
    warnings: list[str] = field(default_factory=list)

    # ---- lookup helpers ----

    def class_by_short(self, short: str) -> ClassInfo | None:
        hits = [c for q, c in self.classes.items() if short_class(q) == short]
        return hits[0] if len(hits) == 1 else None

    def find_class(self, name: str) -> ClassInfo | None:
        if name in self.classes:
            return self.classes[name]
        # Suffix match: "WriteFrontend" or "engine::WriteFrontend" against
        # "blsm::engine::WriteFrontend".
        hits = [
            c
            for q, c in self.classes.items()
            if q == name or q.endswith("::" + name)
        ]
        return hits[0] if len(hits) == 1 else None

    def functions_named(self, name: str, cls: str | None = None) -> list[Function]:
        out = []
        for f in self.functions:
            if f.name != name:
                continue
            if cls is not None:
                if f.cls is None:
                    continue
                if not (f.cls == cls or f.cls.endswith("::" + cls)
                        or cls.endswith("::" + short_class(f.cls))
                        or short_class(f.cls) == short_class(cls)):
                    continue
            out.append(f)
        return out

    def method_decl(self, cls: str, name: str) -> MethodDecl | None:
        info = self.find_class(cls)
        if info is None:
            return None
        return info.methods.get(name)


def short_class(qualified: str) -> str:
    return qualified.rsplit("::", 1)[-1]


@dataclass
class Violation:
    pass_name: str
    file: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.file}:{self.line}: [{self.pass_name}] {self.message}"
