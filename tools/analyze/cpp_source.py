"""Source cleaning and structural scanning for the AST-grade analyzer.

This module owns the character-level work every frontend shares:

  * `CleanSource` strips comments and string/char literals while preserving
    byte offsets and line numbers exactly (each stripped char becomes a
    space, newlines survive), so structural scanning downstream never
    trips over braces inside strings or commented-out code.
  * String literals are recorded with their offsets (the stats-key pass
    consumes them).
  * `analyze:allow(<pass>) <reason>` / `lint:allow(...)` comments are
    collected per line before stripping.
  * Balanced-delimiter helpers (`match_forward`) used by the structural
    parser in textual_frontend.py.

Everything here is pure text processing with no opinion about C++
semantics; the frontends layer meaning on top.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field


ALLOW_RE = re.compile(
    r"(?:analyze|lint):allow\((?P<rule>[\w-]+)\)[ \t]*(?P<reason>[^\n]*)"
)


@dataclass
class Allow:
    rule: str
    reason: str
    line: int


@dataclass
class StringLiteral:
    text: str  # contents without quotes
    offset: int  # offset of the opening quote in the source
    line: int


@dataclass
class CleanSource:
    path: str
    raw: str
    clean: str  # same length as raw; comments/strings blanked
    line_starts: list[int] = field(default_factory=list)
    strings: list[StringLiteral] = field(default_factory=list)
    allows: dict[int, list[Allow]] = field(default_factory=dict)

    def line_of(self, offset: int) -> int:
        return bisect.bisect_right(self.line_starts, offset)

    def line_text(self, line: int) -> str:
        start = self.line_starts[line - 1]
        end = self.raw.find("\n", start)
        return self.raw[start:] if end < 0 else self.raw[start:end]

    def allowed(self, rule: str, line: int) -> Allow | None:
        """An allow on the flagged line or alone on the line above."""
        for candidate in (line, line - 1):
            for allow in self.allows.get(candidate, []):
                if allow.rule == rule:
                    return allow
        return None

    def allowed_decl(self, rule: str, line: int) -> Allow | None:
        """Like `allowed`, but for declarations: the allow may sit anywhere
        in the contiguous `//` comment block directly above the decl."""
        hit = self.allowed(rule, line)
        if hit is not None:
            return hit
        cur = line - 1
        while cur >= 1 and self.line_text(cur).strip().startswith("//"):
            for allow in self.allows.get(cur, []):
                if allow.rule == rule:
                    return allow
            cur -= 1
        return None


def clean_source(path: str, text: str) -> CleanSource:
    n = len(text)
    out = list(text)
    strings: list[StringLiteral] = []
    line_starts = [0]
    for i, ch in enumerate(text):
        if ch == "\n":
            line_starts.append(i + 1)

    def line_of(off: int) -> int:
        return bisect.bisect_right(line_starts, off)

    i = 0
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif ch == '"':
            # Raw string literal? Look back for R prefix.
            if i > 0 and text[i - 1] == "R" and (i < 2 or not text[i - 2].isalnum()):
                close = text.find('("', i)  # delimiter between " and (
                delim = text[i + 1 : close] if 0 <= close <= i + 17 else None
                if delim is not None:
                    end = text.find(")" + delim + '"', close)
                    end = n - len(delim) - 2 if end < 0 else end
                    strings.append(
                        StringLiteral(text[close + 2 : end], i, line_of(i))
                    )
                    stop = end + len(delim) + 2
                    for k in range(i, min(stop, n)):
                        if out[k] != "\n":
                            out[k] = " "
                    i = stop
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            strings.append(StringLiteral(text[i + 1 : j], i, line_of(i)))
            for k in range(i, min(j + 1, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        elif ch == "'":
            # Digit separators (1'000'000) are not char literals: a quote
            # directly following an alnum inside a number stays as-is.
            if (
                i > 0
                and (text[i - 1].isalnum() or text[i - 1] == "_")
                and i + 1 < n
                and text[i + 1].isalnum()
            ):
                i += 1
                continue
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            for k in range(i, min(j + 1, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1

    src = CleanSource(
        path=path,
        raw=text,
        clean="".join(out),
        line_starts=line_starts,
        strings=strings,
    )
    # Allows are inside comments, so collect them from the raw text.
    for m in ALLOW_RE.finditer(text):
        line = src.line_of(m.start())
        src.allows.setdefault(line, []).append(
            Allow(m.group("rule"), m.group("reason").strip(), line)
        )
    return src


OPEN_TO_CLOSE = {"(": ")", "{": "}", "[": "]", "<": ">"}


def match_forward(clean: str, open_pos: int) -> int:
    """Offset of the delimiter matching clean[open_pos], or -1.

    Angle brackets are not handled (ambiguous with comparisons); only
    (), {}, [] nest here.
    """
    opener = clean[open_pos]
    closer = OPEN_TO_CLOSE[opener]
    depth = 0
    for i in range(open_pos, len(clean)):
        ch = clean[i]
        if ch in "({[":
            depth += 1
        elif ch in ")}]":
            depth -= 1
            if depth == 0:
                if ch != closer:
                    return -1
                return i
    return -1


def strip_template_args(type_text: str) -> str:
    """`std::unique_ptr<engine::WriteFrontend>` -> innermost argument type;
    `engine::WriteFrontend*` -> `engine::WriteFrontend`.

    Used to resolve the pointee class of smart-pointer/raw-pointer members.
    """
    t = type_text.strip()
    wrappers = ("std::unique_ptr", "std::shared_ptr", "std::weak_ptr")
    changed = True
    while changed:
        changed = False
        for w in wrappers:
            if t.startswith(w + "<") and t.endswith(">"):
                t = t[len(w) + 1 : -1].strip()
                changed = True
    t = t.rstrip("*& ").strip()
    for prefix in ("const ", "mutable ", "volatile "):
        while t.startswith(prefix):
            t = t[len(prefix):]
    return t.strip()
