"""The four analysis passes.

Each pass consumes the frontend-independent `Model` and returns
`Violation`s. Suppression is uniform: `// analyze:allow(<pass>) <reason>`
on the flagged line or alone on the line above; a reason is mandatory
(an allow without one is itself a violation). The blocking-under-lock
pass additionally honors a decl-site allow on a mutex *member
declaration*, which sanctions blocking calls under that specific mutex —
that is how deliberately IO-serializing locks (WAL group-commit,
manifest-fsync serialization) are expressed without sprinkling per-call
suppressions.
"""

from __future__ import annotations

import re

from cpp_model import (
    Function,
    Model,
    MutexMember,
    Violation,
    short_class,
)
from cpp_source import CleanSource

# ---------------------------------------------------------------------------
# Receiver / mutex resolution shared by the passes
# ---------------------------------------------------------------------------


def resolve_receiver_class(model: Model, fn: Function, receiver: str) -> str | None:
    """Best-effort: the short class name of a call receiver chain like
    `file_`, `this->env_`, `state->file`, `r.mu` (minus the final member)."""
    recv = receiver.strip()
    recv = recv.removeprefix("this->").removeprefix("this.")
    if not recv or recv == "this":
        return short_class(fn.cls) if fn.cls else None
    parts = [p.split("[")[0] for p in re.split(r"\.|->", recv) if p]
    cur_cls = model.classes.get(fn.cls) if fn.cls else None
    cur_type: str | None = None
    for idx, part in enumerate(parts):
        if idx == 0:
            if part in fn.local_types:
                cur_type = fn.local_types[part]
            elif cur_cls is not None and part in cur_cls.member_types:
                cur_type = cur_cls.member_types[part]
            else:
                return None
        else:
            info = model.find_class(short_class(cur_type)) if cur_type else None
            if info is None or part not in info.member_types:
                return None
            cur_type = info.member_types[part]
    return short_class(cur_type) if cur_type else None


def resolve_mutex(model: Model, fn: Function,
                  expr: str) -> tuple[str, MutexMember | None]:
    """Canonicalize a lock expression to "Class::member" where possible.

    Returns (canonical_name, member_or_None). Locals come back as
    "<local>Fn::name"; unresolvable expressions as "<unresolved>expr".
    """
    e = expr.strip().lstrip("&").strip()
    e = e.removeprefix("this->").removeprefix("this.")
    if re.fullmatch(r"[A-Za-z_]\w*", e):
        info = model.classes.get(fn.cls) if fn.cls else None
        if info is not None and e in info.mutexes:
            return info.mutexes[e].qualified, info.mutexes[e]
        if e in fn.local_types and "Mutex" in fn.local_types[e]:
            return f"<local>{fn.qualified}::{e}", None
        hits = [m for c in model.classes.values()
                for m in c.mutexes.values() if m.name == e]
        if len(hits) == 1:
            return hits[0].qualified, hits[0]
        return f"<unresolved>{e}", None
    # Dotted path: resolve the owner chain, last component is the member.
    m = re.match(r"^(?P<owner>.+?)(?:\.|->)(?P<member>\w+)$", e)
    if m:
        owner_cls = resolve_receiver_class(model, fn, m.group("owner"))
        if owner_cls is not None:
            info = model.find_class(owner_cls)
            if info is not None and m.group("member") in info.mutexes:
                mem = info.mutexes[m.group("member")]
                return mem.qualified, mem
        hits = [mm for c in model.classes.values()
                for mm in c.mutexes.values() if mm.name == m.group("member")]
        if len(hits) == 1:
            return hits[0].qualified, hits[0]
    return f"<unresolved>{e}", None


def resolve_callee(model: Model, fn: Function, call) -> list[Function]:
    """Repo-local definitions a call may land on (one level, best effort)."""
    name = call.name.split("::")[-1]
    if call.receiver:
        cls = resolve_receiver_class(model, fn, call.receiver)
        if cls is None:
            return []
        return model.functions_named(name, cls)
    # Unqualified: same class first, then a unique global match.
    if fn.cls:
        own = model.functions_named(name, short_class(fn.cls))
        if own:
            return own
    if "::" in call.name:
        owner = call.name.rsplit("::", 2)[-2]
        hits = model.functions_named(name, owner)
        if hits:
            return hits
    hits = [f for f in model.functions if f.name == name and f.cls is None]
    return hits if len(hits) == 1 else []


# ---------------------------------------------------------------------------
# Pass 1: blocking-under-lock
# ---------------------------------------------------------------------------

PASS_BLOCKING = "blocking-under-lock"

# Method names that are IO/blocking regardless of receiver resolution —
# unique to the Env/file surfaces in this tree.
UNAMBIGUOUS_BLOCKING_METHODS = {
    "Sync", "Append", "AppendV", "Flush", "MultiRead", "ReadAheadHint",
    "NewWritableFile", "NewRandomAccessFile", "NewSequentialFile",
    "NewRandomRWFile", "GetChildren", "RemoveFile", "RenameFile",
    "GetFileSize", "FileExists", "CreateDir", "RemoveDir",
    "RemoveDirRecursive", "SleepForMicroseconds", "Skip",
}
# Ambiguous names: blocking only when the receiver resolves to an IO type.
AMBIGUOUS_BLOCKING_METHODS = {"Read", "Write", "Close"}
IO_TYPE_SUFFIXES = (
    "Env", "SequentialFile", "RandomAccessFile", "WritableFile",
    "RandomRWFile",
)
BLOCKING_FREE_FUNCTIONS = {
    "pread", "pwrite", "preadv", "pwritev", "fsync", "fdatasync",
    "fallocate", "posix_fallocate", "usleep", "nanosleep", "sleep",
    "sleep_for", "sleep_until", "io_uring_submit_and_wait",
    "io_uring_wait_cqe", "io_uring_wait_cqes", "msync", "sync_file_range",
}


def direct_blocking_calls(model: Model, fn: Function) -> list[tuple]:
    """(call, description) for every directly blocking call in fn."""
    out = []
    for c in fn.calls:
        name = c.name.split("::")[-1]
        if c.receiver:
            if name in UNAMBIGUOUS_BLOCKING_METHODS:
                out.append((c, f"{c.receiver}->{name}()"))
            elif name in AMBIGUOUS_BLOCKING_METHODS:
                cls = resolve_receiver_class(model, fn, c.receiver)
                if cls is not None and cls.endswith(IO_TYPE_SUFFIXES):
                    out.append((c, f"{c.receiver}->{name}() [{cls}]"))
        else:
            if name in BLOCKING_FREE_FUNCTIONS:
                out.append((c, f"{c.name}()"))
            elif name in UNAMBIGUOUS_BLOCKING_METHODS and "::" not in c.name:
                out.append((c, f"{name}()"))
    return out


def _held_regions(model: Model, fn: Function):
    """(canonical, member, start, end, why) for every lock-held region.

    REQUIRES-annotated functions are held over the whole body.
    """
    regions = []
    for s in fn.lock_scopes:
        canon, member = resolve_mutex(model, fn, s.mutex)
        regions.append((canon, member, s.start, s.end,
                        f"{s.kind} at line {s.line}"))
    for req in fn.requires:
        canon, member = resolve_mutex(model, fn, req)
        regions.append((canon, member, fn.body_start, fn.body_end,
                        f"REQUIRES({req})"))
    return regions


def run_blocking_under_lock(model: Model, files: set[str]) -> list[Violation]:
    out = []
    direct: dict[int, list] = {}
    for fn in model.functions:
        direct[id(fn)] = direct_blocking_calls(model, fn)
    for fn in model.functions:
        if fn.file not in files:
            continue
        src: CleanSource = model.sources[fn.file]
        regions = _held_regions(model, fn)
        if not regions:
            continue
        blocking_here = {id(c): why for c, why in direct[id(fn)]}
        for c in fn.calls:
            held = [r for r in regions if r[2] <= c.offset < r[3]]
            # Only consider locks without a decl-site IO sanction.
            held = [r for r in held
                    if r[1] is None or r[1].io_allowed_reason is None]
            if not held:
                continue
            canon, _, _, _, why_held = held[0]
            if id(c) in blocking_here:
                if src.allowed(PASS_BLOCKING, c.line):
                    continue
                out.append(Violation(
                    PASS_BLOCKING, fn.file, c.line,
                    f"{fn.qualified} performs blocking call "
                    f"{blocking_here[id(c)]} while holding {canon} "
                    f"({why_held})"))
                continue
            if c.name in ("Wait", "WaitFor", "Lock", "Unlock", "LockShared",
                          "UnlockShared", "TryLock"):
                continue  # CondVar::Wait releases the lock; lock ops are not IO
            for callee in resolve_callee(model, fn, c):
                cb = direct[id(callee)]
                # A helper whose only blocking calls sit under its own
                # decl-sanctioned IO mutex still blocks its caller; report
                # it — the caller's lock must be sanctioned too or the
                # call hoisted out.
                if not cb:
                    continue
                if src.allowed(PASS_BLOCKING, c.line):
                    break
                _, why0 = cb[0]
                out.append(Violation(
                    PASS_BLOCKING, fn.file, c.line,
                    f"{fn.qualified} calls {callee.qualified} (which "
                    f"performs {why0}) while holding {canon} ({why_held})"))
                break
    return out


# ---------------------------------------------------------------------------
# Pass 2: RCU publish ordering
# ---------------------------------------------------------------------------

PASS_RCU = "rcu-publish-order"

PIN_TYPE_RE = re.compile(r"(Ptr\b|shared_ptr)")


def run_rcu_publish_order(model: Model, files: set[str]) -> list[Violation]:
    out = []
    # Publishing methods: anything that itself stores to a view slot.
    publishers: set[tuple[str | None, str]] = set()
    for fn in model.functions:
        if fn.slot_stores:
            publishers.add((short_class(fn.cls) if fn.cls else None, fn.name))
    for fn in model.functions:
        if fn.file not in files:
            continue
        src: CleanSource = model.sources[fn.file]
        clean = src.clean

        publish_points = [s.offset for s in fn.slot_stores]
        for c in fn.calls:
            key_own = (short_class(fn.cls) if fn.cls else None, c.name)
            if key_own in publishers and not c.receiver:
                publish_points.append(c.offset)
            elif c.receiver:
                cls = resolve_receiver_class(model, fn, c.receiver)
                if cls is not None and (cls, c.name) in publishers:
                    publish_points.append(c.offset)
        if not publish_points:
            continue
        last_publish = max(publish_points)

        # R1: the published object must not be touched after the store.
        for s in fn.slot_stores:
            if s.arg_var is None:
                continue
            stmt_end = clean.find(";", s.offset)
            if stmt_end < 0:
                stmt_end = s.offset
            tail = clean[stmt_end:fn.body_end]
            m = re.search(r"\b%s\b" % re.escape(s.arg_var), tail)
            if m:
                off = stmt_end + m.start()
                line = src.line_of(off)
                if src.allowed(PASS_RCU, line):
                    continue
                out.append(Violation(
                    PASS_RCU, fn.file, line,
                    f"{fn.qualified} uses `{s.arg_var}` after publishing it "
                    f"via {s.slot}.store() at line {s.line}; the view must "
                    f"be fully built before the store and never touched "
                    f"after"))

        # R2: inputs pinned for the new view may be released only after
        # the publishing store. Member restructuring (c1_.reset() while
        # rewiring slots under the tree mutex) is protocol, so only
        # obsolete-marking and local-pin drops are ordered.
        for r in fn.release_ops:
            if r.offset >= last_publish:
                continue
            flag = False
            if r.op == "obsolete":
                flag = True
            elif not r.is_member:
                head = re.split(r"\.|->|\[", r.target)[0]
                t = fn.local_decl_types.get(head, "")
                flag = bool(PIN_TYPE_RE.search(t))
            if not flag:
                continue
            if src.allowed(PASS_RCU, r.line):
                continue
            out.append(Violation(
                PASS_RCU, fn.file, r.line,
                f"{fn.qualified} releases input `{r.target}` ({r.op}) "
                f"before the publishing store at line "
                f"{src.line_of(last_publish)}; inputs may be dropped only "
                f"after the new view is visible"))
    return out


# ---------------------------------------------------------------------------
# Pass 3: lock-order graph
# ---------------------------------------------------------------------------

PASS_LOCK_ORDER = "lock-order"


def build_lock_graph(model: Model):
    """Directed edges canonical_outer -> canonical_inner with provenance.

    Sources: ACQUIRED_BEFORE annotations, nested lock scopes, and
    one-level calls from a held region into a function that acquires.
    """
    edges: dict[tuple[str, str], list[str]] = {}

    def add(outer: str, inner: str, why: str):
        if outer.startswith("<") or inner.startswith("<") or outer == inner:
            return
        edges.setdefault((outer, inner), [])
        if why not in edges[(outer, inner)]:
            edges[(outer, inner)].append(why)

    for cls in model.classes.values():
        for mem in cls.mutexes.values():
            for target in mem.acquired_before:
                canon = (cls.mutexes[target].qualified
                         if target in cls.mutexes
                         else f"{short_class(cls.name)}::{target}")
                add(mem.qualified, canon,
                    f"ACQUIRED_BEFORE on {mem.qualified} "
                    f"({mem.file}:{mem.line})")

    for fn in model.functions:
        regions = _held_regions(model, fn)
        # Nested scopes.
        for outer in regions:
            for inner in fn.lock_scopes:
                ic, _ = resolve_mutex(model, fn, inner.mutex)
                if outer[2] < inner.start < outer[3] and outer[0] != ic:
                    add(outer[0], ic,
                        f"nested in {fn.qualified} ({fn.file}:{inner.line})")
        # Calls into acquiring functions (one level).
        for c in fn.calls:
            held = [r for r in regions if r[2] <= c.offset < r[3]]
            if not held:
                continue
            for callee in resolve_callee(model, fn, c):
                inner_canons = set()
                for s in callee.lock_scopes:
                    ic, _ = resolve_mutex(model, callee, s.mutex)
                    inner_canons.add(ic)
                for acq in callee.acquires:
                    ic, _ = resolve_mutex(model, callee, acq)
                    inner_canons.add(ic)
                for r in held:
                    for ic in inner_canons:
                        add(r[0], ic,
                            f"{fn.qualified} -> {callee.qualified} "
                            f"({fn.file}:{c.line})")
    return edges


def find_cycles(edges) -> list[list[str]]:
    graph: dict[str, list[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    cycles = []
    color: dict[str, int] = {}
    stack: list[str] = []

    def dfs(u: str):
        color[u] = 1
        stack.append(u)
        for v in sorted(graph[u]):
            if color.get(v, 0) == 0:
                dfs(v)
            elif color.get(v) == 1:
                cycles.append(stack[stack.index(v):] + [v])
        stack.pop()
        color[u] = 2

    for node in sorted(graph):
        if color.get(node, 0) == 0:
            dfs(node)
    return cycles


def assign_ranks(model: Model, edges) -> dict[str, int]:
    """Longest-path layering: outer locks get lower ranks; an edge
    A -> B (A held while acquiring B) forces rank(A) < rank(B). Ranks are
    spaced by 10 to leave insertion headroom; every known mutex gets a
    rank, isolated ones land in the first layer."""
    graph: dict[str, list[str]] = {}
    nodes = {m.qualified for c in model.classes.values()
             for m in c.mutexes.values()}
    for (a, b) in edges:
        nodes.add(a)
        nodes.add(b)
        graph.setdefault(a, []).append(b)
    depth: dict[str, int] = {}

    def longest_to(n: str, seen: frozenset) -> int:
        if n in depth:
            return depth[n]
        if n in seen:
            return 0  # cycle; reported separately
        best = 0
        for (a, b) in edges:
            if b == n:
                best = max(best, 1 + longest_to(a, seen | {n}))
        depth[n] = best
        return best

    for n in sorted(nodes):
        longest_to(n, frozenset())
    return {n: (depth[n] + 1) * 10 for n in sorted(nodes)}


def run_lock_order(model: Model) -> list[Violation]:
    edges = build_lock_graph(model)
    out = []
    seen = set()
    for cyc in find_cycles(edges):
        key = frozenset(cyc)
        if key in seen:
            continue
        seen.add(key)
        first = cyc[0]
        member = next((m for c in model.classes.values()
                       for m in c.mutexes.values() if m.qualified == first),
                      None)
        file = member.file if member else "(unknown)"
        line = member.line if member else 0
        out.append(Violation(
            PASS_LOCK_ORDER, file, line,
            "lock-order cycle: " + " -> ".join(cyc)))
    return out


# ---------------------------------------------------------------------------
# Pass 4: stats-key registry
# ---------------------------------------------------------------------------

PASS_STATS = "stats-keys"

STATS_KEY_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")
# Helper functions whose string literals also emit stats keys.
STATS_EMITTERS = {"Stats", "AddIoStats"}


def collect_emitted_keys(model: Model):
    """{key: [(file, line, fn_qualified)]}, plus dynamic prefixes
    ({prefix: [...]}) for keys finished with runtime suffixes like
    `"files_l" + std::to_string(i)`."""
    keys: dict[str, list] = {}
    prefixes: dict[str, list] = {}
    for fn in model.functions:
        if fn.name not in STATS_EMITTERS:
            continue
        src: CleanSource = model.sources[fn.file]
        for lit in src.strings:
            if not (fn.body_start <= lit.offset < fn.body_end):
                continue
            if not STATS_KEY_RE.match(lit.text):
                continue
            j = lit.offset + len(lit.text) + 2
            while j < len(src.raw) and src.raw[j] in " \t\n":
                j += 1
            dynamic = j < len(src.raw) and src.raw[j] == "+"
            bucket = prefixes if dynamic else keys
            bucket.setdefault(lit.text, []).append(
                (fn.file, lit.line, fn.qualified))
    return keys, prefixes


def collect_consumed_keys(model: Model, consumer_files: set[str]):
    """Dotted string literals used in stats lookups outside the emitters
    (tests/bench/tools reading engine stats)."""
    out = []
    for path in sorted(consumer_files):
        src: CleanSource = model.sources.get(path)
        if src is None:
            continue
        for lit in src.strings:
            if "." not in lit.text or not STATS_KEY_RE.match(lit.text):
                continue
            line_text = src.line_text(lit.line)
            if "stats" not in line_text.lower():
                continue
            out.append((lit.text, path, lit.line))
    return out


def run_stats_keys(model: Model, registry: dict | None,
                   consumer_files: set[str]) -> list[Violation]:
    out = []
    keys, prefixes = collect_emitted_keys(model)

    # Duplicate emission of the same key from one Stats() implementation
    # is a typo/copy-paste bug.
    for key, sites in keys.items():
        by_fn: dict[str, list] = {}
        for file, line, fq in sites:
            by_fn.setdefault(fq, []).append((file, line))
        for fq, locs in by_fn.items():
            if len(locs) > 1:
                src = model.sources[locs[1][0]]
                if src.allowed(PASS_STATS, locs[1][1]):
                    continue
                out.append(Violation(
                    PASS_STATS, locs[1][0], locs[1][1],
                    f"{fq} emits stats key \"{key}\" more than once "
                    f"(first at line {locs[0][1]})"))

    if registry is not None:
        reg_keys = set(registry.get("keys", []))
        reg_prefixes = set(registry.get("prefixes", []))
        for key, sites in keys.items():
            if key not in reg_keys:
                file, line, fq = sites[0]
                out.append(Violation(
                    PASS_STATS, file, line,
                    f"stats key \"{key}\" ({fq}) missing from the generated "
                    f"registry — run tools/analyze --update-artifacts"))
        for p, sites in prefixes.items():
            if p not in reg_prefixes:
                file, line, fq = sites[0]
                out.append(Violation(
                    PASS_STATS, file, line,
                    f"dynamic stats prefix \"{p}\" ({fq}) missing from the "
                    f"generated registry"))
        for key, path, line in collect_consumed_keys(model, consumer_files):
            if key in reg_keys:
                continue
            if any(key.startswith(p) for p in reg_prefixes):
                continue
            src = model.sources[path]
            if src.allowed(PASS_STATS, line):
                continue
            out.append(Violation(
                PASS_STATS, path, line,
                f"\"{key}\" is read as a stats key but no Stats() "
                f"implementation emits it (typo?)"))
    return out


# ---------------------------------------------------------------------------
# allow hygiene: every allow must carry a reason and match a real pass
# ---------------------------------------------------------------------------

KNOWN_PASSES = {PASS_BLOCKING, PASS_RCU, PASS_LOCK_ORDER, PASS_STATS}


def run_allow_hygiene(model: Model, lint_rules: set[str]) -> list[Violation]:
    out = []
    for path, src in sorted(model.sources.items()):
        for line, allows in sorted(src.allows.items()):
            for a in allows:
                if a.rule in lint_rules and a.rule not in KNOWN_PASSES:
                    continue  # lint.py owns its own rule names
                if a.rule not in KNOWN_PASSES:
                    out.append(Violation(
                        "allow-hygiene", path, line,
                        f"allow names unknown pass '{a.rule}'"))
                elif not a.reason:
                    out.append(Violation(
                        "allow-hygiene", path, line,
                        f"analyze:allow({a.rule}) has no reason — every "
                        f"suppression must be named"))
    return out
