// blsm_server: the shard-per-core network front-end as a standalone binary.
//
//   blsm_server --dir DIR [--host 127.0.0.1] [--port 0] [--shards N]
//               [--engine SPEC] [--write-buffer-mb N] [--durability sync|async]
//               [--print-port]
//
// Opens N engine shards under DIR (dir/shard-00, ...) and serves the binary
// wire protocol (docs/wire_protocol.md) until SIGINT/SIGTERM. --port 0 binds
// an ephemeral port; --print-port writes the bound port to stdout as the
// first line (and flushes) so scripts and CI can discover it.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "server/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s --dir DIR [--host H] [--port P] [--shards N]\n"
          "          [--engine SPEC] [--write-buffer-mb N]\n"
          "          [--durability sync|async] [--print-port]\n",
          argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blsm;

  server::ServerOptions options;
  bool print_port = false;
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      options.dir = argv[++i];
    } else if (strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      options.host = argv[++i];
    } else if (strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      options.port = static_cast<uint16_t>(atoi(argv[++i]));
    } else if (strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      options.shards = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      options.engine_spec = argv[++i];
    } else if (strcmp(argv[i], "--write-buffer-mb") == 0 && i + 1 < argc) {
      options.engine.write_buffer_bytes =
          static_cast<size_t>(atoll(argv[++i])) << 20;
    } else if (strcmp(argv[i], "--durability") == 0 && i + 1 < argc) {
      const char* mode = argv[++i];
      if (strcmp(mode, "sync") == 0) {
        options.engine.durability = DurabilityMode::kSync;
      } else if (strcmp(mode, "async") == 0) {
        options.engine.durability = DurabilityMode::kAsync;
      } else {
        return Usage(argv[0]);
      }
    } else if (strcmp(argv[i], "--print-port") == 0) {
      print_port = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.dir.empty()) return Usage(argv[0]);

  std::unique_ptr<server::Server> srv;
  Status s = server::Server::Start(options, &srv);
  if (!s.ok()) {
    fprintf(stderr, "cannot start server: %s\n", s.ToString().c_str());
    return 1;
  }

  if (print_port) {
    printf("%u\n", srv->port());
    fflush(stdout);
  }
  fprintf(stderr, "blsm_server: %d shard(s) of %s on %s:%u (dir %s)\n",
          srv->num_shards(), options.engine_spec.c_str(),
          options.host.c_str(), srv->port(), options.dir.c_str());

  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  fprintf(stderr, "blsm_server: shutting down\n");
  srv->Stop();
  return 0;
}
