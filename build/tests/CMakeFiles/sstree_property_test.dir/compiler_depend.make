# Empty compiler generated dependencies file for sstree_property_test.
# This may be replaced when dependencies are built.
