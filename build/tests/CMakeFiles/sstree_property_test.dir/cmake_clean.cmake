file(REMOVE_RECURSE
  "CMakeFiles/sstree_property_test.dir/sstree_property_test.cc.o"
  "CMakeFiles/sstree_property_test.dir/sstree_property_test.cc.o.d"
  "sstree_property_test"
  "sstree_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstree_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
