# Empty dependencies file for blsm_stress_test.
# This may be replaced when dependencies are built.
