file(REMOVE_RECURSE
  "CMakeFiles/blsm_stress_test.dir/blsm_stress_test.cc.o"
  "CMakeFiles/blsm_stress_test.dir/blsm_stress_test.cc.o.d"
  "blsm_stress_test"
  "blsm_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
