file(REMOVE_RECURSE
  "CMakeFiles/collapse_test.dir/collapse_test.cc.o"
  "CMakeFiles/collapse_test.dir/collapse_test.cc.o.d"
  "collapse_test"
  "collapse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
