# Empty dependencies file for blsm_property_test.
# This may be replaced when dependencies are built.
