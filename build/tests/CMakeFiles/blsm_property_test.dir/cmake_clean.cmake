file(REMOVE_RECURSE
  "CMakeFiles/blsm_property_test.dir/blsm_property_test.cc.o"
  "CMakeFiles/blsm_property_test.dir/blsm_property_test.cc.o.d"
  "blsm_property_test"
  "blsm_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
