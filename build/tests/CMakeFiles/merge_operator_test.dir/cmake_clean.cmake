file(REMOVE_RECURSE
  "CMakeFiles/merge_operator_test.dir/merge_operator_test.cc.o"
  "CMakeFiles/merge_operator_test.dir/merge_operator_test.cc.o.d"
  "merge_operator_test"
  "merge_operator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
