# Empty dependencies file for merge_operator_test.
# This may be replaced when dependencies are built.
