file(REMOVE_RECURSE
  "CMakeFiles/sstree_test.dir/sstree_test.cc.o"
  "CMakeFiles/sstree_test.dir/sstree_test.cc.o.d"
  "sstree_test"
  "sstree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
