# Empty dependencies file for sstree_test.
# This may be replaced when dependencies are built.
