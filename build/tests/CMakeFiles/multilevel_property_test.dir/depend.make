# Empty dependencies file for multilevel_property_test.
# This may be replaced when dependencies are built.
