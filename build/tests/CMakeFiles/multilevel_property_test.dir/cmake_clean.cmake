file(REMOVE_RECURSE
  "CMakeFiles/multilevel_property_test.dir/multilevel_property_test.cc.o"
  "CMakeFiles/multilevel_property_test.dir/multilevel_property_test.cc.o.d"
  "multilevel_property_test"
  "multilevel_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilevel_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
