file(REMOVE_RECURSE
  "CMakeFiles/merge_scheduler_test.dir/merge_scheduler_test.cc.o"
  "CMakeFiles/merge_scheduler_test.dir/merge_scheduler_test.cc.o.d"
  "merge_scheduler_test"
  "merge_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
