# Empty compiler generated dependencies file for blsm_tree_test.
# This may be replaced when dependencies are built.
