file(REMOVE_RECURSE
  "CMakeFiles/blsm_tree_test.dir/blsm_tree_test.cc.o"
  "CMakeFiles/blsm_tree_test.dir/blsm_tree_test.cc.o.d"
  "blsm_tree_test"
  "blsm_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
