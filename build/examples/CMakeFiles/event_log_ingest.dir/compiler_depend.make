# Empty compiler generated dependencies file for event_log_ingest.
# This may be replaced when dependencies are built.
