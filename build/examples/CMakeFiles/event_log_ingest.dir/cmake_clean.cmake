file(REMOVE_RECURSE
  "CMakeFiles/event_log_ingest.dir/event_log_ingest.cpp.o"
  "CMakeFiles/event_log_ingest.dir/event_log_ingest.cpp.o.d"
  "event_log_ingest"
  "event_log_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_log_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
