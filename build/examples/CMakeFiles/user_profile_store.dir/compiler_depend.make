# Empty compiler generated dependencies file for user_profile_store.
# This may be replaced when dependencies are built.
