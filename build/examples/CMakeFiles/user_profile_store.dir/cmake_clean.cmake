file(REMOVE_RECURSE
  "CMakeFiles/user_profile_store.dir/user_profile_store.cpp.o"
  "CMakeFiles/user_profile_store.dir/user_profile_store.cpp.o.d"
  "user_profile_store"
  "user_profile_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_profile_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
