file(REMOVE_RECURSE
  "CMakeFiles/counter_service.dir/counter_service.cpp.o"
  "CMakeFiles/counter_service.dir/counter_service.cpp.o.d"
  "counter_service"
  "counter_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
