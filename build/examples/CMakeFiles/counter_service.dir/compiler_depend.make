# Empty compiler generated dependencies file for counter_service.
# This may be replaced when dependencies are built.
