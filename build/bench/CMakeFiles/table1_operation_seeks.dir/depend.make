# Empty dependencies file for table1_operation_seeks.
# This may be replaced when dependencies are built.
