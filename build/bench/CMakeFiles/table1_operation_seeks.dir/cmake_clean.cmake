file(REMOVE_RECURSE
  "CMakeFiles/table1_operation_seeks.dir/table1_operation_seeks.cc.o"
  "CMakeFiles/table1_operation_seeks.dir/table1_operation_seeks.cc.o.d"
  "table1_operation_seeks"
  "table1_operation_seeks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_operation_seeks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
