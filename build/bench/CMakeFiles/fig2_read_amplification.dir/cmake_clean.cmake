file(REMOVE_RECURSE
  "CMakeFiles/fig2_read_amplification.dir/fig2_read_amplification.cc.o"
  "CMakeFiles/fig2_read_amplification.dir/fig2_read_amplification.cc.o.d"
  "fig2_read_amplification"
  "fig2_read_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_read_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
