# Empty dependencies file for fig2_read_amplification.
# This may be replaced when dependencies are built.
