# Empty compiler generated dependencies file for fig9_workload_shift.
# This may be replaced when dependencies are built.
