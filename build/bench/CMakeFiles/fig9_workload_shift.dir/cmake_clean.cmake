file(REMOVE_RECURSE
  "CMakeFiles/fig9_workload_shift.dir/fig9_workload_shift.cc.o"
  "CMakeFiles/fig9_workload_shift.dir/fig9_workload_shift.cc.o.d"
  "fig9_workload_shift"
  "fig9_workload_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_workload_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
