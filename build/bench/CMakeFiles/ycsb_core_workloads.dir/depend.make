# Empty dependencies file for ycsb_core_workloads.
# This may be replaced when dependencies are built.
