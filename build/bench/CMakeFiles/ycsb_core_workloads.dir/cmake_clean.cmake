file(REMOVE_RECURSE
  "CMakeFiles/ycsb_core_workloads.dir/ycsb_core_workloads.cc.o"
  "CMakeFiles/ycsb_core_workloads.dir/ycsb_core_workloads.cc.o.d"
  "ycsb_core_workloads"
  "ycsb_core_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_core_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
