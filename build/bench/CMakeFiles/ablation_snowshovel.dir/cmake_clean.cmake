file(REMOVE_RECURSE
  "CMakeFiles/ablation_snowshovel.dir/ablation_snowshovel.cc.o"
  "CMakeFiles/ablation_snowshovel.dir/ablation_snowshovel.cc.o.d"
  "ablation_snowshovel"
  "ablation_snowshovel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_snowshovel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
