# Empty compiler generated dependencies file for ablation_snowshovel.
# This may be replaced when dependencies are built.
