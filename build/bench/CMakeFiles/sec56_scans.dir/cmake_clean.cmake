file(REMOVE_RECURSE
  "CMakeFiles/sec56_scans.dir/sec56_scans.cc.o"
  "CMakeFiles/sec56_scans.dir/sec56_scans.cc.o.d"
  "sec56_scans"
  "sec56_scans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec56_scans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
