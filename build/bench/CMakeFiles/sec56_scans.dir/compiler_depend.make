# Empty compiler generated dependencies file for sec56_scans.
# This may be replaced when dependencies are built.
