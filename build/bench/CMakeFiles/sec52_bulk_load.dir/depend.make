# Empty dependencies file for sec52_bulk_load.
# This may be replaced when dependencies are built.
