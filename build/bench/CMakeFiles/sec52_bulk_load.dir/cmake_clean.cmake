file(REMOVE_RECURSE
  "CMakeFiles/sec52_bulk_load.dir/sec52_bulk_load.cc.o"
  "CMakeFiles/sec52_bulk_load.dir/sec52_bulk_load.cc.o.d"
  "sec52_bulk_load"
  "sec52_bulk_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_bulk_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
