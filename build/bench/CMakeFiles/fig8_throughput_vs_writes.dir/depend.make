# Empty dependencies file for fig8_throughput_vs_writes.
# This may be replaced when dependencies are built.
