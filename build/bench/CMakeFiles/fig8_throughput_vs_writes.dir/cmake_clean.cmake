file(REMOVE_RECURSE
  "CMakeFiles/fig8_throughput_vs_writes.dir/fig8_throughput_vs_writes.cc.o"
  "CMakeFiles/fig8_throughput_vs_writes.dir/fig8_throughput_vs_writes.cc.o.d"
  "fig8_throughput_vs_writes"
  "fig8_throughput_vs_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_throughput_vs_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
