file(REMOVE_RECURSE
  "CMakeFiles/table2_ram_requirements.dir/table2_ram_requirements.cc.o"
  "CMakeFiles/table2_ram_requirements.dir/table2_ram_requirements.cc.o.d"
  "table2_ram_requirements"
  "table2_ram_requirements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_ram_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
