# Empty dependencies file for table2_ram_requirements.
# This may be replaced when dependencies are built.
