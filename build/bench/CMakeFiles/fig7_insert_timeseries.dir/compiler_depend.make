# Empty compiler generated dependencies file for fig7_insert_timeseries.
# This may be replaced when dependencies are built.
