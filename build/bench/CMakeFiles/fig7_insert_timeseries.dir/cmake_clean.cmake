file(REMOVE_RECURSE
  "CMakeFiles/fig7_insert_timeseries.dir/fig7_insert_timeseries.cc.o"
  "CMakeFiles/fig7_insert_timeseries.dir/fig7_insert_timeseries.cc.o.d"
  "fig7_insert_timeseries"
  "fig7_insert_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_insert_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
