# Empty compiler generated dependencies file for blsm_inspect.
# This may be replaced when dependencies are built.
