file(REMOVE_RECURSE
  "CMakeFiles/blsm_inspect.dir/blsm_inspect.cc.o"
  "CMakeFiles/blsm_inspect.dir/blsm_inspect.cc.o.d"
  "blsm_inspect"
  "blsm_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
