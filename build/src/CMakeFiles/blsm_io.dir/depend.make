# Empty dependencies file for blsm_io.
# This may be replaced when dependencies are built.
