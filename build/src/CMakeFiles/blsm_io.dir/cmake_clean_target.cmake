file(REMOVE_RECURSE
  "libblsm_io.a"
)
