file(REMOVE_RECURSE
  "CMakeFiles/blsm_io.dir/io/counting_env.cc.o"
  "CMakeFiles/blsm_io.dir/io/counting_env.cc.o.d"
  "CMakeFiles/blsm_io.dir/io/env.cc.o"
  "CMakeFiles/blsm_io.dir/io/env.cc.o.d"
  "CMakeFiles/blsm_io.dir/io/fault_injection_env.cc.o"
  "CMakeFiles/blsm_io.dir/io/fault_injection_env.cc.o.d"
  "CMakeFiles/blsm_io.dir/io/mem_env.cc.o"
  "CMakeFiles/blsm_io.dir/io/mem_env.cc.o.d"
  "CMakeFiles/blsm_io.dir/io/posix_env.cc.o"
  "CMakeFiles/blsm_io.dir/io/posix_env.cc.o.d"
  "libblsm_io.a"
  "libblsm_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
