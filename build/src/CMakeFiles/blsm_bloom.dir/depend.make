# Empty dependencies file for blsm_bloom.
# This may be replaced when dependencies are built.
