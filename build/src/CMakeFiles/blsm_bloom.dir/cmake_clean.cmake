file(REMOVE_RECURSE
  "CMakeFiles/blsm_bloom.dir/bloom/bloom_filter.cc.o"
  "CMakeFiles/blsm_bloom.dir/bloom/bloom_filter.cc.o.d"
  "libblsm_bloom.a"
  "libblsm_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
