file(REMOVE_RECURSE
  "libblsm_bloom.a"
)
