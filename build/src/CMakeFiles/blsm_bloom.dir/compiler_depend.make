# Empty compiler generated dependencies file for blsm_bloom.
# This may be replaced when dependencies are built.
