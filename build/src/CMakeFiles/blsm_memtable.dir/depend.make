# Empty dependencies file for blsm_memtable.
# This may be replaced when dependencies are built.
