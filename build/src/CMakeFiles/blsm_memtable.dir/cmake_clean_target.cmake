file(REMOVE_RECURSE
  "libblsm_memtable.a"
)
