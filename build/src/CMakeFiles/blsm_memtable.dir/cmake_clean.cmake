file(REMOVE_RECURSE
  "CMakeFiles/blsm_memtable.dir/memtable/memtable.cc.o"
  "CMakeFiles/blsm_memtable.dir/memtable/memtable.cc.o.d"
  "CMakeFiles/blsm_memtable.dir/memtable/skiplist.cc.o"
  "CMakeFiles/blsm_memtable.dir/memtable/skiplist.cc.o.d"
  "libblsm_memtable.a"
  "libblsm_memtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_memtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
