file(REMOVE_RECURSE
  "libblsm_sstree.a"
)
