
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sstree/block.cc" "src/CMakeFiles/blsm_sstree.dir/sstree/block.cc.o" "gcc" "src/CMakeFiles/blsm_sstree.dir/sstree/block.cc.o.d"
  "/root/repo/src/sstree/tree_builder.cc" "src/CMakeFiles/blsm_sstree.dir/sstree/tree_builder.cc.o" "gcc" "src/CMakeFiles/blsm_sstree.dir/sstree/tree_builder.cc.o.d"
  "/root/repo/src/sstree/tree_reader.cc" "src/CMakeFiles/blsm_sstree.dir/sstree/tree_reader.cc.o" "gcc" "src/CMakeFiles/blsm_sstree.dir/sstree/tree_reader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/blsm_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/blsm_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/blsm_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/blsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
