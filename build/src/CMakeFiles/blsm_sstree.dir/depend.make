# Empty dependencies file for blsm_sstree.
# This may be replaced when dependencies are built.
