file(REMOVE_RECURSE
  "CMakeFiles/blsm_sstree.dir/sstree/block.cc.o"
  "CMakeFiles/blsm_sstree.dir/sstree/block.cc.o.d"
  "CMakeFiles/blsm_sstree.dir/sstree/tree_builder.cc.o"
  "CMakeFiles/blsm_sstree.dir/sstree/tree_builder.cc.o.d"
  "CMakeFiles/blsm_sstree.dir/sstree/tree_reader.cc.o"
  "CMakeFiles/blsm_sstree.dir/sstree/tree_reader.cc.o.d"
  "libblsm_sstree.a"
  "libblsm_sstree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_sstree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
