file(REMOVE_RECURSE
  "CMakeFiles/blsm_wal.dir/wal/log_reader.cc.o"
  "CMakeFiles/blsm_wal.dir/wal/log_reader.cc.o.d"
  "CMakeFiles/blsm_wal.dir/wal/log_writer.cc.o"
  "CMakeFiles/blsm_wal.dir/wal/log_writer.cc.o.d"
  "CMakeFiles/blsm_wal.dir/wal/logical_log.cc.o"
  "CMakeFiles/blsm_wal.dir/wal/logical_log.cc.o.d"
  "libblsm_wal.a"
  "libblsm_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
