file(REMOVE_RECURSE
  "libblsm_wal.a"
)
