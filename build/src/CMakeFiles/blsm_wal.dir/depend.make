# Empty dependencies file for blsm_wal.
# This may be replaced when dependencies are built.
