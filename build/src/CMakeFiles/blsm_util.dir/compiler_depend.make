# Empty compiler generated dependencies file for blsm_util.
# This may be replaced when dependencies are built.
