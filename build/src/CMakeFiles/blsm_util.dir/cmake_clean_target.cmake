file(REMOVE_RECURSE
  "libblsm_util.a"
)
