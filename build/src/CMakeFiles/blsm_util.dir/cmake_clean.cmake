file(REMOVE_RECURSE
  "CMakeFiles/blsm_util.dir/util/arena.cc.o"
  "CMakeFiles/blsm_util.dir/util/arena.cc.o.d"
  "CMakeFiles/blsm_util.dir/util/coding.cc.o"
  "CMakeFiles/blsm_util.dir/util/coding.cc.o.d"
  "CMakeFiles/blsm_util.dir/util/crc32c.cc.o"
  "CMakeFiles/blsm_util.dir/util/crc32c.cc.o.d"
  "CMakeFiles/blsm_util.dir/util/hash.cc.o"
  "CMakeFiles/blsm_util.dir/util/hash.cc.o.d"
  "CMakeFiles/blsm_util.dir/util/histogram.cc.o"
  "CMakeFiles/blsm_util.dir/util/histogram.cc.o.d"
  "CMakeFiles/blsm_util.dir/util/random.cc.o"
  "CMakeFiles/blsm_util.dir/util/random.cc.o.d"
  "CMakeFiles/blsm_util.dir/util/slice.cc.o"
  "CMakeFiles/blsm_util.dir/util/slice.cc.o.d"
  "CMakeFiles/blsm_util.dir/util/status.cc.o"
  "CMakeFiles/blsm_util.dir/util/status.cc.o.d"
  "CMakeFiles/blsm_util.dir/util/zipfian.cc.o"
  "CMakeFiles/blsm_util.dir/util/zipfian.cc.o.d"
  "libblsm_util.a"
  "libblsm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
