# Empty dependencies file for blsm_ycsb.
# This may be replaced when dependencies are built.
