file(REMOVE_RECURSE
  "libblsm_ycsb.a"
)
