file(REMOVE_RECURSE
  "CMakeFiles/blsm_ycsb.dir/ycsb/driver.cc.o"
  "CMakeFiles/blsm_ycsb.dir/ycsb/driver.cc.o.d"
  "CMakeFiles/blsm_ycsb.dir/ycsb/generator.cc.o"
  "CMakeFiles/blsm_ycsb.dir/ycsb/generator.cc.o.d"
  "CMakeFiles/blsm_ycsb.dir/ycsb/workload.cc.o"
  "CMakeFiles/blsm_ycsb.dir/ycsb/workload.cc.o.d"
  "libblsm_ycsb.a"
  "libblsm_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
