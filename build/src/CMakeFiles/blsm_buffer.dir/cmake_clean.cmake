file(REMOVE_RECURSE
  "CMakeFiles/blsm_buffer.dir/buffer/block_cache.cc.o"
  "CMakeFiles/blsm_buffer.dir/buffer/block_cache.cc.o.d"
  "libblsm_buffer.a"
  "libblsm_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
