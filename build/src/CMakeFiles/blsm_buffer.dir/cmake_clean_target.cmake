file(REMOVE_RECURSE
  "libblsm_buffer.a"
)
