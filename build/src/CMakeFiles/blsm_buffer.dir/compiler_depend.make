# Empty compiler generated dependencies file for blsm_buffer.
# This may be replaced when dependencies are built.
