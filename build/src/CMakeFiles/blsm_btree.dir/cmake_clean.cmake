file(REMOVE_RECURSE
  "CMakeFiles/blsm_btree.dir/btree/btree.cc.o"
  "CMakeFiles/blsm_btree.dir/btree/btree.cc.o.d"
  "CMakeFiles/blsm_btree.dir/btree/btree_page.cc.o"
  "CMakeFiles/blsm_btree.dir/btree/btree_page.cc.o.d"
  "CMakeFiles/blsm_btree.dir/btree/buffer_pool.cc.o"
  "CMakeFiles/blsm_btree.dir/btree/buffer_pool.cc.o.d"
  "libblsm_btree.a"
  "libblsm_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
