# Empty compiler generated dependencies file for blsm_btree.
# This may be replaced when dependencies are built.
