file(REMOVE_RECURSE
  "libblsm_btree.a"
)
