# Empty dependencies file for blsm_core.
# This may be replaced when dependencies are built.
