file(REMOVE_RECURSE
  "libblsm_core.a"
)
