
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/blsm_tree.cc" "src/CMakeFiles/blsm_core.dir/lsm/blsm_tree.cc.o" "gcc" "src/CMakeFiles/blsm_core.dir/lsm/blsm_tree.cc.o.d"
  "/root/repo/src/lsm/collapse.cc" "src/CMakeFiles/blsm_core.dir/lsm/collapse.cc.o" "gcc" "src/CMakeFiles/blsm_core.dir/lsm/collapse.cc.o.d"
  "/root/repo/src/lsm/manifest.cc" "src/CMakeFiles/blsm_core.dir/lsm/manifest.cc.o" "gcc" "src/CMakeFiles/blsm_core.dir/lsm/manifest.cc.o.d"
  "/root/repo/src/lsm/merge_iterator.cc" "src/CMakeFiles/blsm_core.dir/lsm/merge_iterator.cc.o" "gcc" "src/CMakeFiles/blsm_core.dir/lsm/merge_iterator.cc.o.d"
  "/root/repo/src/lsm/merge_operator.cc" "src/CMakeFiles/blsm_core.dir/lsm/merge_operator.cc.o" "gcc" "src/CMakeFiles/blsm_core.dir/lsm/merge_operator.cc.o.d"
  "/root/repo/src/lsm/merge_scheduler.cc" "src/CMakeFiles/blsm_core.dir/lsm/merge_scheduler.cc.o" "gcc" "src/CMakeFiles/blsm_core.dir/lsm/merge_scheduler.cc.o.d"
  "/root/repo/src/lsm/record.cc" "src/CMakeFiles/blsm_core.dir/lsm/record.cc.o" "gcc" "src/CMakeFiles/blsm_core.dir/lsm/record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/blsm_memtable.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/blsm_sstree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/blsm_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/blsm_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/blsm_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/blsm_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/blsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
