file(REMOVE_RECURSE
  "CMakeFiles/blsm_core.dir/lsm/blsm_tree.cc.o"
  "CMakeFiles/blsm_core.dir/lsm/blsm_tree.cc.o.d"
  "CMakeFiles/blsm_core.dir/lsm/collapse.cc.o"
  "CMakeFiles/blsm_core.dir/lsm/collapse.cc.o.d"
  "CMakeFiles/blsm_core.dir/lsm/manifest.cc.o"
  "CMakeFiles/blsm_core.dir/lsm/manifest.cc.o.d"
  "CMakeFiles/blsm_core.dir/lsm/merge_iterator.cc.o"
  "CMakeFiles/blsm_core.dir/lsm/merge_iterator.cc.o.d"
  "CMakeFiles/blsm_core.dir/lsm/merge_operator.cc.o"
  "CMakeFiles/blsm_core.dir/lsm/merge_operator.cc.o.d"
  "CMakeFiles/blsm_core.dir/lsm/merge_scheduler.cc.o"
  "CMakeFiles/blsm_core.dir/lsm/merge_scheduler.cc.o.d"
  "CMakeFiles/blsm_core.dir/lsm/record.cc.o"
  "CMakeFiles/blsm_core.dir/lsm/record.cc.o.d"
  "libblsm_core.a"
  "libblsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
