file(REMOVE_RECURSE
  "libblsm_sim.a"
)
