# Empty dependencies file for blsm_sim.
# This may be replaced when dependencies are built.
