
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device_model.cc" "src/CMakeFiles/blsm_sim.dir/sim/device_model.cc.o" "gcc" "src/CMakeFiles/blsm_sim.dir/sim/device_model.cc.o.d"
  "/root/repo/src/sim/ram_requirements.cc" "src/CMakeFiles/blsm_sim.dir/sim/ram_requirements.cc.o" "gcc" "src/CMakeFiles/blsm_sim.dir/sim/ram_requirements.cc.o.d"
  "/root/repo/src/sim/read_amplification.cc" "src/CMakeFiles/blsm_sim.dir/sim/read_amplification.cc.o" "gcc" "src/CMakeFiles/blsm_sim.dir/sim/read_amplification.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/blsm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/blsm_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
