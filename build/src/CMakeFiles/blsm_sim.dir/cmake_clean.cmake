file(REMOVE_RECURSE
  "CMakeFiles/blsm_sim.dir/sim/device_model.cc.o"
  "CMakeFiles/blsm_sim.dir/sim/device_model.cc.o.d"
  "CMakeFiles/blsm_sim.dir/sim/ram_requirements.cc.o"
  "CMakeFiles/blsm_sim.dir/sim/ram_requirements.cc.o.d"
  "CMakeFiles/blsm_sim.dir/sim/read_amplification.cc.o"
  "CMakeFiles/blsm_sim.dir/sim/read_amplification.cc.o.d"
  "libblsm_sim.a"
  "libblsm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
