file(REMOVE_RECURSE
  "libblsm_multilevel.a"
)
