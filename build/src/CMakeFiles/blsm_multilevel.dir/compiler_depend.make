# Empty compiler generated dependencies file for blsm_multilevel.
# This may be replaced when dependencies are built.
