file(REMOVE_RECURSE
  "CMakeFiles/blsm_multilevel.dir/multilevel/compaction.cc.o"
  "CMakeFiles/blsm_multilevel.dir/multilevel/compaction.cc.o.d"
  "CMakeFiles/blsm_multilevel.dir/multilevel/multilevel_tree.cc.o"
  "CMakeFiles/blsm_multilevel.dir/multilevel/multilevel_tree.cc.o.d"
  "CMakeFiles/blsm_multilevel.dir/multilevel/version.cc.o"
  "CMakeFiles/blsm_multilevel.dir/multilevel/version.cc.o.d"
  "libblsm_multilevel.a"
  "libblsm_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blsm_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
